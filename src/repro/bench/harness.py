"""Experiment harness: method factories, runners, and text tables.

Every benchmark regenerates a paper table/figure through this module so
that method construction, configuration, and result bookkeeping are
identical across experiments.  Two scale profiles exist:

* ``quick`` (default) — a few epochs on down-scaled datasets; preserves
  orderings and ratios, runs in minutes.  Used by ``benchmarks/``.
* ``paper`` — the paper's hyperparameters (200 epochs, full sizes);
  only for manual runs with hours of budget.

Set ``REPRO_BENCH_PROFILE=paper`` to switch.  ``REPRO_EVAL_BACKEND``
(``serial``/``process``/``pool``) selects the candidate-scoring
backend of the :mod:`repro.eval` service for every method built by
the harness (``REPRO_EVAL_WORKERS`` sizes the parallel ones), and
``REPRO_EVAL_CACHE=0`` disables score memoization.
``REPRO_EVAL_SPECULATION=0`` turns off the pool backend's cross-agent
sweep speculation (on by default; a no-op for the other backends).
Scores are identical across backends, but the ``process`` and ``pool``
backends prefetch sweeps speculatively, so evaluation-*count* tables
(Table IV, Figure 9) are paper-comparable only under the default
``serial`` backend.  ``REPRO_EVAL_FIDELITY`` (default ``off``) sets
the multi-fidelity spec — e.g. ``ladder+surrogate`` — and *does*
change reported scores, so fidelity-on sweeps hash into their own
run-store cells.
"""

from __future__ import annotations

import os
import sys
import time
from collections.abc import Sequence

from ..api.plan import FeaturePlan, fpe_identity
from ..api.registry import searcher_registry
from ..core.engine import AFEResult, EngineConfig
from ..eval import BACKENDS as EVAL_BACKENDS
from ..core.fpe import FPEModel
from ..datasets.generators import TabularTask
from ..datasets.registry import load as load_dataset
from ..store import RunStore, config_hash
from ..store.runs import RUN_RESUME_ENV, RUN_STORE_ENV

__all__ = [
    "ALL_METHODS",
    "bench_profile",
    "bench_eval_backend",
    "bench_config",
    "bench_dataset",
    "make_method",
    "active_run_store",
    "resume_enabled",
    "run_single",
    "run_methods",
    "format_table",
    "set_cell_sink",
]

#: Table III column order (paper aliases in parentheses).
ALL_METHODS = (
    "AutoFSR",  # FSR
    "RTDLN",  # DLN
    "NFS",
    "FE|DL",
    "DL|FE",
    "E-AFE_R",
    "E-AFE_D",
    "E-AFE_L",
    "E-AFE_P",
    "E-AFE_I",
    "E-AFE",
)


def bench_profile() -> str:
    """Current scale profile: "quick" unless REPRO_BENCH_PROFILE=paper."""
    profile = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
    if profile not in ("quick", "paper"):
        raise ValueError(f"unknown bench profile {profile!r}")
    return profile


def bench_eval_backend() -> str:
    """Candidate-scoring backend: "serial" unless REPRO_EVAL_BACKEND says else."""
    backend = os.environ.get("REPRO_EVAL_BACKEND", "serial").lower()
    if backend not in EVAL_BACKENDS:
        raise ValueError(
            f"unknown eval backend {backend!r}; expected one of {EVAL_BACKENDS}"
        )
    return backend


def bench_config(seed: int = 0, **overrides) -> EngineConfig:
    """Engine configuration for the active profile."""
    if bench_profile() == "paper":
        params = dict(
            n_epochs=200,
            stage1_epochs=20,
            transforms_per_agent=5,
            n_splits=5,
            n_estimators=10,
            max_agents=16,
            seed=seed,
        )
    else:
        params = dict(
            n_epochs=3,
            stage1_epochs=2,
            transforms_per_agent=3,
            n_splits=3,
            n_estimators=5,
            max_agents=6,
            seed=seed,
        )
    params["eval_backend"] = bench_eval_backend()
    params["eval_cache"] = os.environ.get("REPRO_EVAL_CACHE", "1") != "0"
    params["eval_speculation"] = (
        os.environ.get("REPRO_EVAL_SPECULATION", "1") != "0"
    )
    params["eval_fidelity"] = os.environ.get("REPRO_EVAL_FIDELITY", "off")
    # The per-fit deadline is resolved by the EvaluationService itself
    # (REPRO_EVAL_TIMEOUT), so the config only carries an explicit one.
    params.update(overrides)
    return EngineConfig(**params)


def bench_dataset(name: str) -> TabularTask:
    """Load a Table III dataset at the active profile's scale."""
    if bench_profile() == "paper":
        return load_dataset(name)
    return load_dataset(name, max_samples=250, max_features=8)


def make_method(name: str, config: EngineConfig, fpe: FPEModel | None = None):
    """Instantiate any registered method by its canonical name.

    Thin shim over :func:`repro.api.registry.searcher_registry` — every
    built-in (Table III columns, ablations, related-work systems) and
    every runtime-registered third-party searcher constructs through
    the same table, so the bench runs them identically.
    """
    return searcher_registry().create(name, config, fpe=fpe)


_RUN_STORES: dict[str, RunStore] = {}


def active_run_store() -> RunStore | None:
    """RunStore named by ``REPRO_RUN_STORE`` (set by bench ``--store``)."""
    path = os.environ.get(RUN_STORE_ENV)
    if not path:
        return None
    store = _RUN_STORES.get(path)
    if store is None:
        store = RunStore(path)
        _RUN_STORES[path] = store
    return store


def resume_enabled() -> bool:
    """Whether completed run-store cells should be replayed, not re-run."""
    return os.environ.get(RUN_RESUME_ENV, "0") != "0"


#: When set, :func:`run_single` routes not-yet-completed cells to this
#: callable instead of fitting them — the fleet leader's enqueue pass.
_CELL_SINK = None


def set_cell_sink(sink):
    """Install (or clear, with ``None``) the leader's enqueue hook.

    The sink is called as ``sink(task, method, config, fpe,
    cell_hash)`` for every cell :func:`run_single` would otherwise fit;
    already-completed cells keep replaying from the store.  Returns
    the previous sink so callers can restore it (``try/finally``).
    With a sink installed, :func:`run_single` requires an active run
    store and performs **zero fits** — experiment code runs unchanged,
    which is what makes every bench experiment a distributable
    workload for free.
    """
    global _CELL_SINK
    previous = _CELL_SINK
    _CELL_SINK = sink
    return previous


def _placeholder_result(task: TabularTask, method: str) -> AFEResult:
    """The stand-in an enqueue pass returns for a not-yet-run cell.

    Shaped like a real result (every counter present, zeroed) so the
    experiment's own aggregation code keeps walking the sweep and
    discovers every cell; the leader discards the pass's output and
    renders the real tables from the store once the fleet drains.
    """
    return AFEResult(
        dataset=task.name,
        method=method,
        task=task.task,
        base_score=0.0,
        best_score=0.0,
        selected_features=[],
    )


def _fpe_token(fpe: FPEModel | None) -> str:
    """FPE identity folded into run-store cell hashes.

    Covers the model's constructor identity (hash family, signature
    dimension, seed, labelling threshold) — which pins the model
    exactly for every ``default_fpe``/``tune_fpe`` flow, where the
    training corpus is a deterministic function of the seed.  Models
    trained on *custom* corpora under identical hyperparameters are
    indistinguishable here; such callers must bypass the store.
    """
    if fpe is None:
        return "none"
    return f"{fpe.method}:{fpe.d}:{fpe.seed}:{fpe.thre}"


def run_single(
    task: TabularTask,
    method: str,
    config: EngineConfig,
    fpe: FPEModel | None = None,
    run_store: RunStore | None = None,
    resume: bool | None = None,
    owner: str | None = None,
) -> AFEResult:
    """Run one (dataset, method, seed) cell, through the run store if active.

    With a store (explicit or via ``REPRO_RUN_STORE``), the cell is
    marked running before the fit and its full result payload is
    persisted on completion.  With resume enabled (explicit or via
    ``REPRO_RUN_RESUME``), an already-completed cell is replayed
    straight from the store — bit-identical, zero fits — which is what
    lets a killed sweep continue where it left off.

    Cells are keyed by (dataset, method, seed, config-hash +
    FPE-identity); see :func:`_fpe_token` for what the FPE component
    does and does not distinguish.  ``owner`` labels this runner in
    the store's start/finish ownership protocol (two concurrent
    runners of one cell resolve to one winner); by default each call
    gets a fresh token.

    With a cell sink installed (:func:`set_cell_sink` — the fleet
    leader's enqueue pass), cells not yet completed in the store are
    handed to the sink and a placeholder result is returned: zero
    fits, every cell discovered.
    """
    store = run_store if run_store is not None else active_run_store()
    if _CELL_SINK is not None:
        if store is None:
            raise RuntimeError(
                "a fleet enqueue pass needs an active run store "
                "(--store / REPRO_RUN_STORE)"
            )
        cell_hash = f"{config_hash(config)}|fpe:{_fpe_token(fpe)}"
        payload = store.completed_payload(
            task.name, method, config.seed, cell_hash
        )
        if payload is not None:
            return AFEResult.from_dict(payload)
        _CELL_SINK(task, method, config, fpe, cell_hash)
        return _placeholder_result(task, method)
    if store is None:
        return make_method(method, config, fpe=fpe).fit(task)
    cell_hash = f"{config_hash(config)}|fpe:{_fpe_token(fpe)}"
    should_resume = resume_enabled() if resume is None else resume
    if should_resume:
        payload = store.completed_payload(
            task.name, method, config.seed, cell_hash
        )
        if payload is not None:
            return AFEResult.from_dict(payload)
    owner = owner or f"pid:{os.getpid()}:{id(config):x}:{time.monotonic_ns():x}"
    store.start(task.name, method, config.seed, cell_hash, owner=owner)
    engine = make_method(method, config, fpe=fpe)
    result = engine.fit(task)
    payload = result.to_dict(include_matrix=True)
    # Persist the deployable artifact next to the scores: a warm store
    # yields FeaturePlans (repro.store CLI `plans`), not just numbers.
    # Methods whose "features" are not re-computable operator
    # expressions opt out with ``portable_plan = False`` (DL|FE's
    # learned repr_* columns); the try/except keeps score persistence
    # alive for third-party searchers that forget the flag, but never
    # silently — a plan-building regression must leave a trace.
    if getattr(engine, "portable_plan", True):
        try:
            payload["feature_plan"] = FeaturePlan.from_result(
                result,
                input_columns=task.X.columns,
                # The model the engine actually filtered with (a
                # variant may substitute the supplied instance).
                fpe=fpe_identity(getattr(engine, "fpe", None)),
                config=config,
            ).to_dict()
        except (ValueError, KeyError) as error:
            print(
                f"warning: no feature plan stored for "
                f"({task.name}, {method}, seed={config.seed}): {error}; "
                "set portable_plan=False on the searcher to silence",
                file=sys.stderr,
            )
    store.finish(task.name, method, config.seed, cell_hash, payload,
                 owner=owner)
    return result


def run_methods(
    task: TabularTask,
    methods: Sequence[str],
    config: EngineConfig,
    fpe: FPEModel | None = None,
    run_store: RunStore | None = None,
    resume: bool | None = None,
) -> dict[str, AFEResult]:
    """Run several methods on one dataset; results keyed by method name."""
    return {
        name: run_single(
            task, name, config, fpe=fpe, run_store=run_store, resume=resume
        )
        for name in methods
    }


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned text table (the benches' printable output)."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(value) for value in row] for row in rows]
    widths = [
        max(len(headers[j]), *(len(row[j]) for row in rendered)) if rendered
        else len(headers[j])
        for j in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[j]) for j, header in enumerate(headers)),
        "  ".join("-" * widths[j] for j in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[j].ljust(widths[j]) for j in range(len(row))))
    return "\n".join(lines)
