"""Unit tests for linear models, naive Bayes, GP, MLP, and ResNet."""

import numpy as np
import pytest

from repro.ml import (
    RTDLN,
    GaussianNB,
    GaussianProcessRegressor,
    LinearSVC,
    LogisticRegression,
    MLPClassifier,
    MLPRegressor,
    Ridge,
    TabularResNet,
    accuracy_score,
    one_minus_rae,
)


def _linear_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (2 * X[:, 0] - X[:, 1] > 0).astype(int)
    return X, y


class TestLogisticRegression:
    def test_learns_linear_boundary(self):
        X, y = _linear_data()
        model = LogisticRegression(n_iter=300).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.95

    def test_proba_in_unit_interval(self):
        X, y = _linear_data()
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.min() >= 0.0 and proba.max() <= 1.0
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_multiclass_one_vs_rest(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 2))
        y = np.digitize(X[:, 0], [-0.7, 0.7])
        model = LogisticRegression(n_iter=300).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_single_class_training_fold(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.ones(10)
        model = LogisticRegression().fit(X, y)
        assert set(model.predict(X)) == {1.0}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((2, 2)))


class TestLinearSVC:
    def test_learns_linear_boundary(self):
        X, y = _linear_data(400)
        model = LinearSVC(n_iter=500, seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 2))
        y = np.digitize(X[:, 1], [-0.7, 0.7])
        model = LinearSVC(n_iter=800, seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.8

    def test_invalid_C(self):
        with pytest.raises(ValueError):
            LinearSVC(C=0.0)

    def test_single_class(self):
        X = np.zeros((5, 2))
        model = LinearSVC().fit(X, np.full(5, 3.0))
        assert set(model.predict(X)) == {3.0}


class TestRidge:
    def test_recovers_linear_coefficients(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2))
        y = 3.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5
        model = Ridge(alpha=1e-6).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-6)

    def test_alpha_shrinks_weights(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = X @ np.array([5.0, -3.0, 2.0])
        loose = Ridge(alpha=1e-9).fit(X, y)._weights
        tight = Ridge(alpha=100.0).fit(X, y)._weights
        assert np.linalg.norm(tight[:-1]) < np.linalg.norm(loose[:-1])

    def test_negative_alpha(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0)


class TestGaussianNB:
    def test_separated_gaussians(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-3, 1, (100, 2)), rng.normal(3, 1, (100, 2))])
        y = np.array([0] * 100 + [1] * 100)
        model = GaussianNB().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.98

    def test_constant_feature_does_not_crash(self):
        X = np.column_stack([np.ones(20), np.arange(20)])
        y = (np.arange(20) > 9).astype(int)
        model = GaussianNB().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_proba_normalized(self):
        X, y = _linear_data()
        proba = GaussianNB().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_feature_mismatch(self):
        X, y = _linear_data(30)
        model = GaussianNB().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 7)))


class TestGaussianProcess:
    def test_interpolates_smooth_function(self):
        X = np.linspace(0, 4, 60).reshape(-1, 1)
        y = np.sin(X[:, 0])
        model = GaussianProcessRegressor(alpha=1e-4).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=0.05)

    def test_subsamples_large_input(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(2000, 2))
        y = X[:, 0]
        model = GaussianProcessRegressor(max_points=100, seed=0).fit(X, y)
        assert model._X.shape[0] == 100

    def test_reverts_to_mean_far_away(self):
        X = np.zeros((10, 1))
        y = np.full(10, 5.0)
        model = GaussianProcessRegressor().fit(X, y)
        far = model.predict(np.full((1, 1), 100.0))
        assert far[0] == pytest.approx(5.0, abs=1e-6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(length_scale=0.0)
        with pytest.raises(ValueError):
            GaussianProcessRegressor(alpha=0.0)


class TestMLP:
    def test_classifier_learns_xor_interaction(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 2))
        y = ((X[:, 0] * X[:, 1]) > 0).astype(int)
        model = MLPClassifier(hidden_sizes=(32,), n_epochs=80, seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_classifier_proba_normalized(self):
        X, y = _linear_data()
        proba = MLPClassifier(n_epochs=10).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_regressor_learns_quadratic(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, size=(400, 1))
        y = X[:, 0] ** 2
        model = MLPRegressor(hidden_sizes=(32,), n_epochs=120, seed=0).fit(X, y)
        assert one_minus_rae(y, model.predict(X)) > 0.8

    def test_deterministic_under_seed(self):
        X, y = _linear_data()
        a = MLPClassifier(n_epochs=5, seed=3).fit(X, y).predict_proba(X)
        b = MLPClassifier(n_epochs=5, seed=3).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(a, b)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros((1, 2)))


class TestResNetAndRTDLN:
    def test_resnet_classifier_learns(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 3))
        y = (X[:, 0] + X[:, 1] ** 2 > 1).astype(int)
        model = TabularResNet(task="C", n_epochs=40, seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_resnet_regressor_learns(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = X[:, 0] * X[:, 1]
        model = TabularResNet(task="R", n_epochs=60, seed=0).fit(X, y)
        assert one_minus_rae(y, model.predict(X)) > 0.5

    def test_transform_shape(self):
        X, y = _linear_data(100)
        model = TabularResNet(task="C", width=16, n_epochs=5).fit(X, y)
        assert model.transform(X).shape == (100, 16)

    def test_invalid_task(self):
        with pytest.raises(ValueError):
            TabularResNet(task="Z")

    def test_rtdln_end_to_end(self):
        X, y = _linear_data(150)
        model = RTDLN(task="C", n_epochs=10, width=16, seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.7

    def test_rtdln_regression(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 2))
        y = X[:, 0]
        model = RTDLN(task="R", n_epochs=10, width=16, seed=0).fit(X, y)
        assert one_minus_rae(y, model.predict(X)) > 0.3

    def test_proba_requires_classification(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 2))
        model = TabularResNet(task="R", n_epochs=2).fit(X, X[:, 0])
        with pytest.raises(RuntimeError):
            model.predict_proba(X)
