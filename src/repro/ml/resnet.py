"""Tabular ResNet (RTDL-style) and the paper's RTDLN baseline.

Gorishniy et al. (NeurIPS 2021, "Revisiting Deep Learning Models for
Tabular Data") found a ResNet-like architecture — a stack of residual
dense blocks — to be a strong tabular deep-learning baseline.  The paper
derives its RTDLN baseline from it: train the ResNet on the raw
features, then *replace the softmax head with a Random Forest* fit on
the penultimate representation (Section IV-A3).

Architecture (manual numpy backprop):

    embed:  z = X W_e + b_e
    block:  z = z + relu(z W_1 + b_1) W_2 + b_2     (x n_blocks)
    head:   out = relu(z) W_h + b_h
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_matrix, check_X_y
from .forest import RandomForestClassifier, RandomForestRegressor
from .mlp import softmax
from .optim import Adam
from .preprocessing import StandardScaler

__all__ = ["TabularResNet", "RTDLN"]


class TabularResNet(BaseEstimator):
    """Residual dense network for tabular inputs.

    ``task`` is "C" (classification, softmax + cross-entropy) or "R"
    (regression, linear head + MSE on a standardized target).
    """

    def __init__(
        self,
        task: str = "C",
        width: int = 64,
        n_blocks: int = 2,
        lr: float = 0.01,
        n_epochs: int = 40,
        batch_size: int = 64,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if task not in ("C", "R"):
            raise ValueError("task must be 'C' or 'R'")
        if n_blocks < 1:
            raise ValueError("n_blocks must be at least 1")
        self.task = task
        self.width = width
        self.n_blocks = n_blocks
        self.lr = lr
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self._params: list[np.ndarray] = []
        self._scaler: StandardScaler | None = None
        self.classes_: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # Parameter layout helpers -------------------------------------------------
    def _init_params(self, n_in: int, n_out: int, rng: np.random.Generator) -> None:
        def dense(a: int, b: int) -> tuple[np.ndarray, np.ndarray]:
            return rng.normal(0.0, np.sqrt(2.0 / a), size=(a, b)), np.zeros(b)

        params: list[np.ndarray] = []
        params.extend(dense(n_in, self.width))  # embed
        for _ in range(self.n_blocks):
            params.extend(dense(self.width, self.width))  # W1, b1
            params.extend(dense(self.width, self.width))  # W2, b2
        params.extend(dense(self.width, n_out))  # head
        self._params = list(params)

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, dict]:
        p = self._params
        cache: dict = {"X": X}
        z = X @ p[0] + p[1]
        cache["z"] = [z]
        cache["a"] = []
        for b in range(self.n_blocks):
            w1, b1 = p[2 + 4 * b], p[3 + 4 * b]
            w2, b2 = p[4 + 4 * b], p[5 + 4 * b]
            hidden = np.maximum(z @ w1 + b1, 0.0)
            cache["a"].append(hidden)
            z = z + hidden @ w2 + b2
            cache["z"].append(z)
        representation = np.maximum(z, 0.0)
        cache["repr"] = representation
        logits = representation @ p[-2] + p[-1]
        return logits, cache

    def _backward(self, grad_logits: np.ndarray, cache: dict) -> list[np.ndarray]:
        p = self._params
        grads = [np.zeros_like(param) for param in p]
        representation = cache["repr"]
        grads[-2] = representation.T @ grad_logits + self.l2 * p[-2]
        grads[-1] = grad_logits.sum(axis=0)
        grad_z = (grad_logits @ p[-2].T) * (cache["z"][-1] > 0.0)
        for b in range(self.n_blocks - 1, -1, -1):
            w1, w2 = p[2 + 4 * b], p[4 + 4 * b]
            hidden = cache["a"][b]
            z_in = cache["z"][b]
            grads[4 + 4 * b] = hidden.T @ grad_z + self.l2 * w2
            grads[5 + 4 * b] = grad_z.sum(axis=0)
            grad_hidden = (grad_z @ w2.T) * (hidden > 0.0)
            grads[2 + 4 * b] = z_in.T @ grad_hidden + self.l2 * w1
            grads[3 + 4 * b] = grad_hidden.sum(axis=0)
            grad_z = grad_z + grad_hidden @ w1.T  # residual skip path
        grads[0] = cache["X"].T @ grad_z + self.l2 * p[0]
        grads[1] = grad_z.sum(axis=0)
        return grads

    # Training -------------------------------------------------------------
    def fit(self, X, y) -> "TabularResNet":
        matrix, target = check_X_y(X, y)
        rng = np.random.default_rng(self.seed)
        self._scaler = StandardScaler().fit(matrix)
        scaled = self._scaler.transform(matrix)
        if self.task == "C":
            self.classes_ = np.unique(target)
            encoded = np.searchsorted(self.classes_, target)
            n_out = max(len(self.classes_), 2)
            labels = np.zeros((len(encoded), n_out))
            labels[np.arange(len(encoded)), encoded] = 1.0
        else:
            self._y_mean = float(target.mean())
            self._y_std = float(target.std()) or 1.0
            labels = ((target - self._y_mean) / self._y_std).reshape(-1, 1)
            n_out = 1
        self._init_params(scaled.shape[1], n_out, rng)
        optimizer = Adam(lr=self.lr)
        n_samples = scaled.shape[0]
        batch = min(self.batch_size, n_samples)
        for _ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                rows = order[start : start + batch]
                logits, cache = self._forward(scaled[rows])
                if self.task == "C":
                    grad_logits = (softmax(logits) - labels[rows]) / len(rows)
                else:
                    grad_logits = 2.0 * (logits - labels[rows]) / len(rows)
                grads = self._backward(grad_logits, cache)
                optimizer.step(self._params, grads)
        return self

    # Inference ------------------------------------------------------------
    def _scaled(self, X) -> np.ndarray:
        if self._scaler is None:
            raise RuntimeError("TabularResNet is not fitted")
        matrix = check_matrix(X, allow_nonfinite=True)
        return self._scaler.transform(np.nan_to_num(matrix))

    def transform(self, X) -> np.ndarray:
        """Penultimate representation (the features RTDLN feeds to RF)."""
        _, cache = self._forward(self._scaled(X))
        return cache["repr"]

    def predict_proba(self, X) -> np.ndarray:
        if self.task != "C":
            raise RuntimeError("predict_proba requires task='C'")
        logits, _ = self._forward(self._scaled(X))
        return softmax(logits)

    def predict(self, X) -> np.ndarray:
        logits, _ = self._forward(self._scaled(X))
        if self.task == "C":
            indices = np.argmax(logits[:, : len(self.classes_)], axis=1)
            return self.classes_[indices]
        return logits[:, 0] * self._y_std + self._y_mean


class RTDLN(BaseEstimator):
    """The paper's RTDLN baseline: ResNet body + Random Forest head.

    Train a :class:`TabularResNet` end-to-end, discard its linear head,
    and fit a Random Forest on the learned representation.  On small
    tabular datasets the representation collapses (the behaviour the
    paper reports as near-0.0 scores); on large ones it is competitive.
    """

    def __init__(
        self,
        task: str = "C",
        width: int = 64,
        n_blocks: int = 2,
        n_epochs: int = 40,
        forest_estimators: int = 10,
        seed: int = 0,
    ) -> None:
        self.task = task
        self.width = width
        self.n_blocks = n_blocks
        self.n_epochs = n_epochs
        self.forest_estimators = forest_estimators
        self.seed = seed
        self._body: TabularResNet | None = None
        self._head: BaseEstimator | None = None

    def fit(self, X, y) -> "RTDLN":
        self._body = TabularResNet(
            task=self.task,
            width=self.width,
            n_blocks=self.n_blocks,
            n_epochs=self.n_epochs,
            seed=self.seed,
        ).fit(X, y)
        representation = self._body.transform(X)
        if self.task == "C":
            self._head = RandomForestClassifier(
                n_estimators=self.forest_estimators, seed=self.seed
            )
        else:
            self._head = RandomForestRegressor(
                n_estimators=self.forest_estimators, seed=self.seed
            )
        self._head.fit(representation, y)
        return self

    def transform(self, X) -> np.ndarray:
        if self._body is None:
            raise RuntimeError("RTDLN is not fitted")
        return self._body.transform(X)

    def predict(self, X) -> np.ndarray:
        if self._body is None or self._head is None:
            raise RuntimeError("RTDLN is not fitted")
        return self._head.predict(self._body.transform(X))
