"""Chaos under real workloads: retries absorb faults bit-identically.

The reliability contract: injected store faults are transient, the
retry layer absorbs them, and because both the fault sequence and the
backoff jitter are seeded, a run under chaos produces *bit-identical*
results to a fault-free run — not merely "it didn't crash".
"""

import pytest

from repro import chaos
from repro.chaos import FaultPlan
from repro.core import AFEEngine, EngineConfig, KeepAllFilter
from repro.datasets import make_classification
from repro.store import SqliteBackend


@pytest.fixture(autouse=True)
def _clean_chaos():
    chaos.reset()
    yield
    chaos.reset()


def _tiny_config(**overrides):
    params = {
        "n_epochs": 2,
        "stage1_epochs": 1,
        "transforms_per_agent": 2,
        "n_splits": 3,
        "n_estimators": 3,
        "max_agents": 5,
        "seed": 0,
    }
    params.update(overrides)
    return EngineConfig(**params)


#: Wall-clock / environment-dependent keys excluded from bit-identity.
_TIMING_KEYS = {
    "wall_time", "generation_time", "evaluation_time",
    "pool_workers", "pool_peak_inflight", "pool_occupancy",
    "history",
}


def _stable(result) -> dict:
    payload = {
        k: v for k, v in result.to_dict().items() if k not in _TIMING_KEYS
    }
    payload["history_scores"] = [
        record.best_score for record in result.history
    ]
    return payload


class TestStoreUnderFaults:
    def test_all_writes_survive_injected_put_faults(self, tmp_path):
        chaos.install(FaultPlan.parse("store.put:err=0.4@seed=11"))
        backend = SqliteBackend(str(tmp_path / "scores.db"))
        for i in range(60):
            backend.put(f"key-{i}", float(i) / 7.0)
        # Every write landed despite ~40% of puts faulting on their
        # first attempt; the retry policy logged the recoveries.
        for i in range(60):
            assert backend.get(f"key-{i}") == float(i) / 7.0
        assert chaos.fault_counts().get("store.put", 0) > 0
        assert backend.retry.n_retries > 0

    def test_reads_survive_injected_get_faults(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "scores.db"))
        backend.put("k", 0.5)
        chaos.install(FaultPlan.parse("store.get:err=0.5@seed=3"))
        values = [backend.get("k") for _ in range(30)]
        assert values == [0.5] * 30
        assert chaos.fault_counts().get("store.get", 0) > 0


class TestEngineBitIdentity:
    def test_engine_run_identical_with_and_without_store_faults(
        self, tmp_path
    ):
        task = make_classification(
            name="chaos-task", n_samples=80, n_features=4, seed=0
        )

        clean_config = _tiny_config(
            eval_store_path=str(tmp_path / "clean.db")
        )
        baseline = AFEEngine(KeepAllFilter(), clean_config).fit(task)

        chaos.install(FaultPlan.parse("store.put:err=0.3@seed=17"))
        chaotic_config = _tiny_config(
            eval_store_path=str(tmp_path / "chaotic.db")
        )
        chaotic = AFEEngine(KeepAllFilter(), chaotic_config).fit(task)
        fired = dict(chaos.fault_counts())
        chaos.reset()

        assert fired.get("store.put", 0) > 0, (
            "fault plan never fired — the test exercised nothing"
        )
        assert _stable(chaotic) == _stable(baseline)

    def test_same_fault_seed_replays_identically(self, tmp_path):
        task = make_classification(
            name="replay-task", n_samples=80, n_features=4, seed=1
        )
        results = []
        fired = []
        for run in range(2):
            chaos.install(
                FaultPlan.parse("store.put:err=0.3,store.get:err=0.1@seed=5")
            )
            config = _tiny_config(
                seed=1, eval_store_path=str(tmp_path / f"run{run}.db")
            )
            results.append(
                _stable(AFEEngine(KeepAllFilter(), config).fit(task))
            )
            fired.append(dict(chaos.fault_counts()))
            chaos.reset()
        assert results[0] == results[1]
        assert fired[0] == fired[1]
