"""Persistent pool backend: equivalence, crash recovery, shm hygiene."""

import glob
import os
import signal

import numpy as np
import pytest

from repro.core.evaluation import DownstreamEvaluator
from repro.datasets import make_classification
from repro.eval import (
    EvaluationCache,
    EvaluationService,
    PoolExecutor,
    TaskLost,
)
from repro.eval.executor import resolve_pool_workers
from repro.eval.fingerprint import content_digest
from repro.eval.shm import SegmentStore, attach_array, segment_prefix


def _evaluator(seed=0):
    return DownstreamEvaluator(task="C", n_splits=3, n_estimators=3, seed=seed)


def _workload(n=6, seed=5):
    task = make_classification(n_samples=90, n_features=4, seed=seed)
    base = task.X.to_array()
    d = base.shape[1]
    columns = [
        base[:, i % d] * base[:, (i + 1) % d] + float(i) for i in range(n)
    ]
    return task, base, columns


def _own_segments():
    return glob.glob(f"/dev/shm/{segment_prefix()}*")


class TestSegmentStore:
    def test_publish_is_idempotent_per_token(self):
        store = SegmentStore()
        matrix = np.arange(12, dtype=np.float64).reshape(4, 3)
        name, shape = store.publish("tok", matrix)
        again, _ = store.publish("tok", matrix)
        assert name == again
        assert shape == (4, 3)
        assert len(store) == 1
        store.close()

    def test_attach_sees_published_bytes(self):
        store = SegmentStore()
        matrix = np.random.default_rng(0).normal(size=(8, 3))
        name, shape = store.publish("tok", matrix)
        view, segment = attach_array(name, shape)
        assert view.tobytes() == np.ascontiguousarray(matrix).tobytes()
        assert not view.flags.writeable
        segment.close()
        store.close()

    def test_eviction_spares_referenced_segments(self):
        store = SegmentStore(max_segments=2)
        column = np.zeros(4)
        store.publish("a", column)
        store.acquire("a")
        store.publish("b", column)
        store.publish("c", column)  # over the bound: "b" (idle) goes, "a" stays
        assert len(store) == 2
        name_a, _ = store.publish("a", column)  # still published, no new segment
        assert len(store) == 2
        store.release("a")
        store.publish("d", column)
        assert len(store) == 2
        store.close()
        assert len(store) == 0

    def test_close_unlinks_dev_shm_entries(self):
        store = SegmentStore()
        store.publish("tok", np.ones((16, 2)))
        assert _own_segments()
        store.close()
        assert _own_segments() == []


class TestPoolExecutor:
    def test_scores_bit_identical_to_direct_evaluation(self):
        task, base, columns = _workload()
        folds_evaluator = _evaluator()
        from repro.ml.model_selection import plan_folds

        y = np.asarray(task.y, dtype=np.float64)
        folds = plan_folds(y, n_splits=3, seed=0, stratified=True)
        reference = [
            folds_evaluator.evaluate(
                np.column_stack([base, column]), y, folds=folds
            )
            for column in columns
        ]
        with PoolExecutor(_evaluator().params(), n_workers=2) as executor:
            token, y_token = content_digest(base), content_digest(y)
            seqs = [
                executor.submit(token, base, y_token, y, column)
                for column in columns
            ]
            scores = [executor.result(seq)[0] for seq in seqs]
        assert scores == reference

    def test_crash_marks_inflight_lost_and_pool_survives(self):
        task, base, columns = _workload()
        y = np.asarray(task.y, dtype=np.float64)
        executor = PoolExecutor(_evaluator().params(), n_workers=2)
        try:
            token, y_token = content_digest(base), content_digest(y)
            seqs = [
                executor.submit(token, base, y_token, y, column)
                for column in columns
            ]
            for pid in executor.worker_pids:
                os.kill(pid, signal.SIGKILL)
            outcomes = []
            for seq in seqs:
                try:
                    outcomes.append(executor.result(seq)[0])
                except TaskLost:
                    outcomes.append(None)
            assert executor.n_recoveries >= 1
            assert None in outcomes  # at least one submission was lost
            # The respawned pool serves new submissions normally.
            seq = executor.submit(token, base, y_token, y, columns[0])
            score, seconds = executor.result(seq)
            assert seconds >= 0.0
            direct = EvaluationService(_evaluator(), cache=None).score_batch(
                base, [columns[0]], y
            )[0]
            assert score == direct
        finally:
            executor.close()
        assert _own_segments() == []

    def test_close_is_idempotent_and_unlinks(self):
        task, base, columns = _workload(n=1)
        y = np.asarray(task.y, dtype=np.float64)
        executor = PoolExecutor(_evaluator().params(), n_workers=1)
        executor.submit(
            content_digest(base), base, content_digest(y), y, columns[0]
        )
        executor.close()
        executor.close()
        assert _own_segments() == []
        with pytest.raises(RuntimeError):
            executor.submit(
                content_digest(base), base, content_digest(y), y, columns[0]
            )


class TestResolveWorkers:
    def test_explicit_beats_env_beats_cpu(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "3")
        assert resolve_pool_workers(2) == 2
        assert resolve_pool_workers(None) == 3
        monkeypatch.delenv("REPRO_EVAL_WORKERS")
        assert resolve_pool_workers(None) == (os.cpu_count() or 1)

    def test_env_overrides_process_backend_default(self, monkeypatch):
        from repro.eval.executor import env_eval_workers

        monkeypatch.setenv("REPRO_EVAL_WORKERS", "2")
        assert env_eval_workers() == 2
        monkeypatch.delenv("REPRO_EVAL_WORKERS")
        assert env_eval_workers() is None

    def test_invalid_env_value_raises_named_error(self, monkeypatch):
        from repro.eval.executor import env_eval_workers

        for bad in ("four", "0", "-2"):
            monkeypatch.setenv("REPRO_EVAL_WORKERS", bad)
            with pytest.raises(ValueError, match="REPRO_EVAL_WORKERS"):
                env_eval_workers()


class TestBackendEquivalence:
    def test_pool_process_serial_bit_identity_scores_and_counters(self):
        task, base, columns = _workload()
        # Duplicate a candidate so the in-batch dedup paths are exercised.
        columns = columns + [columns[0]]
        results = {}
        for backend in ("serial", "process", "pool"):
            service = EvaluationService(
                _evaluator(),
                cache=EvaluationCache(),
                backend=backend,
                n_workers=2,
            )
            with service:
                first = service.score_batch(base, columns, task.y)
                second = service.score_batch(base, columns, task.y)
            results[backend] = {
                "scores": (first, second),
                "hits": service.stats.n_hits,
                "misses": service.stats.n_misses,
                "fallbacks": service.stats.n_backend_fallbacks,
                "fits": service.evaluator.n_evaluations,
            }
        assert results["pool"] == results["serial"] == results["process"]
        assert results["pool"]["fallbacks"] == 0

    def test_iter_scores_async_matches_serial_scores(self):
        task, base, columns = _workload(seed=7)
        serial = EvaluationService(_evaluator(), cache=None, backend="serial")
        expected = list(serial.iter_scores(base, columns, task.y))
        pool = EvaluationService(
            _evaluator(), cache=EvaluationCache(), backend="pool", n_workers=2
        )
        with pool:
            streamed = list(pool.iter_scores_async(base, columns, task.y))
        assert streamed == expected

    def test_abandoned_futures_still_cached_and_counted(self):
        task, base, columns = _workload(seed=8)
        service = EvaluationService(
            _evaluator(), cache=EvaluationCache(), backend="pool", n_workers=2
        )
        with service:
            scores = service.iter_scores_async(base, columns, task.y)
            next(scores)
            scores.close()  # abandon the rest mid-flight
            service.close()  # drains stragglers into counters + cache
            # Every candidate was submitted speculatively; the repeat
            # batch is served from cache without a single new fit.
            fits_before = service.evaluator.n_evaluations
            assert fits_before == len(columns)
            again = service.score_batch(base, columns, task.y)
            assert service.evaluator.n_evaluations == fits_before
            assert len(again) == len(columns)

    def test_submit_batch_futures_resolve_in_any_order(self):
        task, base, columns = _workload(seed=9)
        serial = EvaluationService(_evaluator(), cache=None, backend="serial")
        expected = serial.score_batch(base, columns, task.y)
        service = EvaluationService(
            _evaluator(), cache=EvaluationCache(), backend="pool", n_workers=2
        )
        with service:
            futures = service.submit_batch(base, columns, task.y)
            got = [future.result() for future in reversed(futures)]
        assert got == expected[::-1]

    def test_future_held_across_later_batches_still_resolves(self):
        # Regression: a drain pass used to consume completions for
        # futures the caller still held, deadlocking their result().
        task, base, columns = _workload(seed=12)
        serial = EvaluationService(_evaluator(), cache=None, backend="serial")
        expected = serial.score_batch(base, columns, task.y)
        service = EvaluationService(
            _evaluator(), cache=EvaluationCache(), backend="pool", n_workers=2
        )
        with service:
            held = service.submit_batch(base, columns[:3], task.y)
            # A second batch triggers the speculative drain of the first.
            service.score_batch(
                base, [column + 5.0 for column in columns], task.y
            )
            assert [future.result() for future in held] == expected[:3]

    def test_future_resolves_after_service_close(self):
        # Regression: resolving a pool future after close() raised
        # AttributeError instead of returning the drained score.
        task, base, columns = _workload(seed=13)
        serial = EvaluationService(_evaluator(), cache=None, backend="serial")
        expected = serial.score_batch(base, columns, task.y)
        service = EvaluationService(
            _evaluator(), cache=EvaluationCache(), backend="pool", n_workers=2
        )
        held = service.submit_batch(base, columns, task.y)
        service.close()
        assert [future.result() for future in held] == expected

    def test_worker_crash_resubmits_and_batch_completes(self):
        task, base, columns = _workload(seed=10)
        serial = EvaluationService(_evaluator(), cache=None, backend="serial")
        expected = serial.score_batch(base, columns, task.y)
        service = EvaluationService(
            _evaluator(), cache=EvaluationCache(), backend="pool", n_workers=2
        )
        with service:
            executor = service._ensure_executor()
            futures = service.submit_batch(base, columns, task.y)
            for pid in executor.worker_pids:
                os.kill(pid, signal.SIGKILL)
            scores = [future.result() for future in futures]
            assert scores == expected
            # Crashed submissions are resubmitted to the recovered pool
            # (counted on the resubmit policy); anything the resubmit
            # can't save lands in the serial-fallback counter.  Either
            # way, the crash left an audit trail.
            recoveries = (
                service._pool_retry.n_retries
                + service.stats.n_backend_fallbacks
            )
            assert recoveries >= 1
            # Later batches run on the recovered pool without fallback.
            fallbacks = service.stats.n_backend_fallbacks
            more = service.score_batch(
                base, [column + 1.0 for column in columns], task.y
            )
            assert len(more) == len(columns)
            assert service.stats.n_backend_fallbacks == fallbacks
        assert _own_segments() == []

    def test_no_shm_leak_when_scoring_raises(self):
        task, base, columns = _workload(n=2, seed=11)
        service = EvaluationService(
            _evaluator(), cache=None, backend="pool", n_workers=1
        )
        bad = np.ones(base.shape[0] + 1)  # wrong length: worker-side error,
        # then the serial fallback raises the real ValueError in the parent
        with pytest.raises(ValueError):
            with service:
                service.score_batch(base, [columns[0], bad], task.y)
        assert service.stats.n_backend_fallbacks >= 1
        assert _own_segments() == []


class TestEngineTrajectoryIdentity:
    def test_pool_engine_bit_identical_to_serial(self):
        from repro.core.engine import AFEEngine, EngineConfig
        from repro.core.filters import KeepAllFilter

        task = make_classification(n_samples=100, n_features=4, seed=3)

        def run(backend):
            config = EngineConfig(
                n_epochs=2,
                stage1_epochs=1,
                transforms_per_agent=2,
                n_splits=3,
                n_estimators=3,
                seed=0,
                eval_backend=backend,
                eval_workers=2,
            )
            return AFEEngine(KeepAllFilter(), config).fit(task)

        serial = run("serial")
        pool = run("pool")
        assert pool.best_score == serial.best_score
        assert pool.selected_features == serial.selected_features
        assert [r.best_score for r in pool.history] == [
            r.best_score for r in serial.history
        ]
        assert np.array_equal(pool.selected_matrix, serial.selected_matrix)
        assert pool.n_backend_fallbacks == 0
        assert "n_backend_fallbacks" in pool.to_dict()
        assert _own_segments() == []
