"""Feature hashing (Weinberger et al., ICML 2009) — related-work method.

Section V-B of the paper surveys approximate-feature approaches; the
hashing trick is the classic one: tokens are hashed into ``d`` buckets
with a signed hash so inner products stay unbiased.  We implement it as
an alternative signature backend for the FPE model, which lets the
"Why MinHash?" question (paper Q6) be answered empirically — see
``benchmarks/test_ablation_signatures.py``.
"""

from __future__ import annotations

import numpy as np

from ..ml.preprocessing import QuantileBinner

__all__ = ["FeatureHasher"]

_PRIME = (1 << 31) - 1


class FeatureHasher:
    """Signed hashing of tokenized columns into ``d`` buckets.

    Tokenization matches :class:`~repro.hashing.MinHasher` (sample-index
    x quantile-bin tokens) so the two backends sketch exactly the same
    set representation and differ only in the compression operator.
    """

    def __init__(self, d: int = 48, n_bins: int = 8, seed: int = 0) -> None:
        if d < 1:
            raise ValueError("signature dimension d must be positive")
        self.d = d
        self.n_bins = n_bins
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Independent universal hashes for bucket index and sign.
        self._a_bucket = int(rng.integers(1, _PRIME))
        self._b_bucket = int(rng.integers(0, _PRIME))
        self._a_sign = int(rng.integers(1, _PRIME))
        self._b_sign = int(rng.integers(0, _PRIME))

    def tokenize(self, column: np.ndarray) -> np.ndarray:
        values = np.asarray(column, dtype=np.float64).reshape(-1, 1)
        values = np.nan_to_num(values, posinf=0.0, neginf=0.0)
        bins = QuantileBinner(n_bins=self.n_bins).fit_transform(values)[:, 0]
        return np.arange(len(values), dtype=np.int64) * self.n_bins + bins

    def signature_of_tokens(self, tokens: np.ndarray) -> np.ndarray:
        """phi(x)_j = sum over tokens hashing to bucket j of xi(token)."""
        ids = np.asarray(tokens, dtype=np.int64)
        if ids.size == 0:
            return np.zeros(self.d)
        buckets = ((self._a_bucket * ids + self._b_bucket) % _PRIME) % self.d
        signs = np.where(
            ((self._a_sign * ids + self._b_sign) % _PRIME) % 2 == 0, 1.0, -1.0
        )
        out = np.zeros(self.d)
        np.add.at(out, buckets, signs)
        # Normalize by token count so signatures of different-length
        # columns are comparable (the FPE use case).
        return out / np.sqrt(ids.size)

    def compress(self, column: np.ndarray) -> np.ndarray:
        """Fixed-size signed-count sketch of a real-valued column."""
        return self.signature_of_tokens(self.tokenize(column))
