"""FeaturePipeline: compose, fit/predict, persist, refuse."""

import numpy as np
import pytest

from repro.api import AutoFeatureEngineer, FeaturePlan
from repro.core import FPEModel
from repro.core.pretrain import make_evaluator_factory
from repro.datasets import make_classification
from repro.ml import GaussianNB, RandomForestClassifier, Ridge
from repro.operators import Operator, OperatorRegistry, default_registry
from repro.serve import FeaturePipeline


def _data(seed=0, n=80):
    task = make_classification(n_samples=n, n_features=4, seed=seed)
    return task.X.to_array(), task.y


def _plan():
    return FeaturePlan(
        ["f0", "mul(f0,f1)", "div(f2,f3)"], ["f0", "f1", "f2", "f3"]
    )


class TestFitPredict:
    def test_plan_plus_model(self):
        X, y = _data()
        pipe = FeaturePipeline(
            _plan(), RandomForestClassifier(n_estimators=5, seed=0)
        ).fit(X, y)
        predictions = pipe.predict(X)
        assert predictions.shape == (len(y),)
        assert set(np.unique(predictions)) <= set(np.unique(y))

    def test_features_match_plan_transform_sanitized(self):
        from repro.ml.base import sanitize_matrix

        X, y = _data()
        pipe = FeaturePipeline(_plan(), GaussianNB()).fit(X, y)
        expected = sanitize_matrix(_plan().transform(X))
        assert pipe.transform(X).tobytes() == expected.tobytes()

    def test_predict_proba(self):
        X, y = _data()
        pipe = FeaturePipeline(
            _plan(), RandomForestClassifier(n_estimators=5, seed=0)
        ).fit(X, y)
        proba = pipe.predict_proba(X)
        assert proba.shape[0] == len(y)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_predict_proba_unsupported_model(self):
        X, y = _data()
        pipe = FeaturePipeline(_plan(), Ridge()).fit(X, y)
        with pytest.raises(AttributeError, match="predict_proba"):
            pipe.predict_proba(X)

    def test_unfitted_predict_refused(self):
        pipe = FeaturePipeline(
            AutoFeatureEngineer(), RandomForestClassifier()
        )
        with pytest.raises(RuntimeError, match="not fitted"):
            pipe.predict(np.zeros((2, 4)))

    def test_invalid_plan_type(self):
        pipe = FeaturePipeline("not-a-plan", GaussianNB())
        with pytest.raises(TypeError, match="FeaturePlan"):
            pipe.fit(*_data())

    def test_predict_rows_mappings_and_lists(self):
        X, y = _data()
        pipe = FeaturePipeline(
            _plan(), RandomForestClassifier(n_estimators=5, seed=0)
        ).fit(X, y)
        by_list = pipe.predict_rows([list(X[0]), list(X[1])])
        by_map = pipe.predict_rows(
            [dict(zip(["f0", "f1", "f2", "f3"], row)) for row in X[:2]]
        )
        assert by_list == by_map == pipe.predict(X[:2]).tolist()
        proba = pipe.predict_proba_rows([list(X[0])])
        assert len(proba[0]) == len(np.unique(y))


class TestEstimatorComposition:
    def _searched_pipeline(self):
        corpus = [
            make_classification(n_samples=50, n_features=4, seed=s)
            for s in range(2)
        ]
        fpe = FPEModel(d=8, seed=0)
        fpe.fit(corpus, make_evaluator_factory(), generated_per_dataset=2)
        from repro.core.engine import EngineConfig

        config = EngineConfig(
            n_epochs=2, stage1_epochs=1, transforms_per_agent=2,
            n_splits=3, n_estimators=3, seed=0,
        )
        afe = AutoFeatureEngineer(method="E-AFE", config=config, fpe=fpe)
        return afe.as_pipeline(RandomForestClassifier(n_estimators=5, seed=0))

    def test_unfitted_estimator_searches_then_fits(self):
        X, y = _data(seed=3)
        pipe = self._searched_pipeline().fit(X, y)
        assert isinstance(pipe.plan_, FeaturePlan)
        assert pipe.predict(X).shape == (len(y),)

    def test_fitted_estimator_contributes_plan(self):
        X, y = _data(seed=3)
        pipe = self._searched_pipeline().fit(X, y)
        fitted_afe = pipe.plan  # the estimator, fitted by pipe.fit above
        again = fitted_afe.as_pipeline(GaussianNB())
        # A fitted estimator hands over its existing plan immediately —
        # no second search, fitted state before fit() is even called.
        assert again.plan_ == pipe.plan_

    def test_to_plan_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            AutoFeatureEngineer().to_plan()


class TestPersistence:
    def test_save_load_bit_identical_predictions(self, tmp_path):
        X, y = _data()
        pipe = FeaturePipeline(
            _plan(), RandomForestClassifier(n_estimators=5, seed=0)
        ).fit(X, y)
        path = tmp_path / "model.pipeline.pkl"
        pipe.save(path)
        restored = FeaturePipeline.load(path)
        assert restored.plan_ == pipe.plan_
        assert restored.predict(X).tobytes() == pipe.predict(X).tobytes()
        assert (
            restored.predict_proba(X).tobytes()
            == pipe.predict_proba(X).tobytes()
        )

    def test_save_unfitted_refused(self, tmp_path):
        pipe = FeaturePipeline(AutoFeatureEngineer(), GaussianNB())
        with pytest.raises(RuntimeError, match="not fitted"):
            pipe.save(tmp_path / "x.pkl")

    def test_load_foreign_registry_refused(self, tmp_path):
        X, y = _data()
        custom = OperatorRegistry(
            list(default_registry())
            + [Operator("cube", 1, lambda x: x**3)]
        )
        plan = FeaturePlan(
            ["cube(f0)"], ["f0", "f1", "f2", "f3"], registry=custom
        )
        pipe = FeaturePipeline(plan, GaussianNB()).fit(X, y)
        path = tmp_path / "model.pipeline.pkl"
        pipe.save(path)
        with pytest.raises(ValueError, match="operator-registry mismatch"):
            FeaturePipeline.load(path)
        restored = FeaturePipeline.load(path, registry=custom)
        assert restored.predict(X).tobytes() == pipe.predict(X).tobytes()
