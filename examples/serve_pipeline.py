"""Search → publish → serve: the full production loop, in-process.

Run:
    python examples/serve_pipeline.py

Extends ``deploy_pipeline.py`` (plan file in a fresh process) to the
serving stack this library ships:

1. fit an ``AutoFeatureEngineer`` and compose it with a downstream
   model as a ``FeaturePipeline``;
2. publish the searched ``FeaturePlan`` into a versioned
   ``PlanRegistry``;
3. start the stdlib HTTP server (``python -m repro.serve`` under the
   hood) on a background thread and drive it with a curl-style JSON
   client loop — verifying that what comes back over the wire is
   bit-identical to in-process ``FeaturePlan.transform``.
"""

import json
import urllib.request
from pathlib import Path
import tempfile

import numpy as np

from repro import AutoFeatureEngineer, EngineConfig, pretrain_fpe
from repro.ml import RandomForestClassifier, accuracy_score
from repro.serve import PlanRegistry, TransformService, make_server


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="eafe-serve-"))

    print("1) Pre-train the FPE model ...")
    fpe = pretrain_fpe(n_train=6, n_validation=2, scale=0.25, seed=0)

    print("2) Search features + fit a downstream model as one pipeline ...")
    from repro.datasets import make_classification

    full = make_classification(n_samples=450, n_features=6, seed=123)
    rng = np.random.default_rng(0)
    order = rng.permutation(full.n_samples)
    X, y = full.X.to_array(), full.y
    X_train, y_train = X[order[:300]], y[order[:300]]
    X_unseen, y_unseen = X[order[300:]], y[order[300:]]

    config = EngineConfig(
        n_epochs=5, stage1_epochs=2, transforms_per_agent=3,
        n_splits=3, n_estimators=5, seed=0,
    )
    afe = AutoFeatureEngineer(method="E-AFE", config=config, fpe=fpe)
    pipeline = afe.as_pipeline(
        RandomForestClassifier(n_estimators=10, seed=0)
    ).fit(X_train, y_train)
    result = afe.result_
    print(
        f"   {result.base_score:.4f} -> {result.best_score:.4f} "
        f"({pipeline.plan_.n_features} features)"
    )

    print("3) Publish the plan into a versioned registry ...")
    registry = PlanRegistry(workdir / "plans")
    record = registry.publish(pipeline.plan_, "credit/E-AFE")
    print(f"   published {record.ref}  fingerprint={record.fingerprint}")

    print("4) Start the HTTP server on a background thread ...")
    service = TransformService(registry=registry)
    server = make_server(
        service, default_plan=record.ref, pipeline=pipeline
    )
    server.serve_background()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"   serving on {base}")

    def post(path: str, body: dict) -> dict:
        request = urllib.request.Request(
            f"{base}{path}",
            data=json.dumps(body).encode("utf-8"),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return json.loads(response.read())

    print("5) Client loop: transform + predict unseen rows over HTTP ...")
    served = post("/transform", {"rows": X_unseen.tolist()})
    wire_matrix = np.asarray(served["rows"], dtype=np.float64)
    in_process = pipeline.plan_.transform(X_unseen)
    identical = wire_matrix.tobytes() == in_process.tobytes()
    print(f"   HTTP transform bit-identical to in-process: {identical}")

    predictions = post("/predict", {"rows": X_unseen.tolist()})["predictions"]
    served_acc = accuracy_score(y_unseen, np.asarray(predictions))
    print(f"   served-prediction accuracy on unseen batch: {served_acc:.4f}")

    stats = service.stats(record.ref)
    print(
        f"   serve stats: {stats.n_requests} requests, {stats.n_rows} rows, "
        f"{stats.n_compiles} compile(s), hit-rate {stats.hit_rate:.0%}"
    )

    server.shutdown()
    server.server_close()
    print("6) Clean shutdown.")


if __name__ == "__main__":
    main()
