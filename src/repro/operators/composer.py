"""High-order feature composition and provenance tracking.

A generated feature is an expression tree over original features, e.g.
``div(add(f1,f2),log(f3))``.  The paper caps expression depth with the
"Maximum Order" hyperparameter (default 5; swept in Figure 8(3)).  The
composer tracks order so engines can enforce that cap, and renders
canonical names so duplicate expressions can be de-duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .registry import Operator

__all__ = ["GeneratedFeature", "compose", "FeatureSubgroup"]


@dataclass
class GeneratedFeature:
    """A feature column plus its provenance.

    ``order`` follows the paper's definition: original features have
    order 1, and applying an operator yields
    ``1 + max(order of operands)``.
    """

    name: str
    values: np.ndarray
    order: int = 1
    origin: str | None = None  # name of the original (root) feature

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64).reshape(-1)
        if self.order < 1:
            raise ValueError("feature order must be >= 1")

    @property
    def n_samples(self) -> int:
        return self.values.shape[0]

    def is_degenerate(self) -> bool:
        """Constant or non-finite columns carry no usable signal."""
        if not np.isfinite(self.values).all():
            return True
        return bool(np.ptp(self.values) < 1e-12) if self.values.size else True


def compose(
    operator: Operator,
    a: GeneratedFeature,
    b: GeneratedFeature | None = None,
) -> GeneratedFeature:
    """Apply ``operator`` to one or two features, tracking provenance."""
    if operator.arity == 2:
        if b is None:
            raise ValueError(f"operator {operator.name!r} needs two operands")
        if a.n_samples != b.n_samples:
            raise ValueError("operand sample counts differ")
        values = operator.apply(a.values, b.values)
        order = 1 + max(a.order, b.order)
        name = operator.describe(a.name, b.name)
    else:
        values = operator.apply(a.values)
        order = 1 + a.order
        name = operator.describe(a.name)
    return GeneratedFeature(
        name=name, values=values, order=order, origin=a.origin or a.name
    )


@dataclass
class FeatureSubgroup:
    """One agent's working set: an original feature and its descendants.

    Mirrors the paper's state decomposition (Section II, Agents): agent
    ``j`` owns the subgroup rooted at original feature ``j``, samples
    operand pairs from it with replacement, and appends every accepted
    generated feature back into it (Figure 3's transition).
    """

    root: GeneratedFeature
    members: list[GeneratedFeature] = field(default_factory=list)
    max_members: int = 64

    def __post_init__(self) -> None:
        if not self.members:
            self.members = [self.root]

    def __len__(self) -> int:
        return len(self.members)

    @property
    def names(self) -> set[str]:
        return {feature.name for feature in self.members}

    def sample_operands(
        self, rng: np.random.Generator, arity: int
    ) -> tuple[GeneratedFeature, GeneratedFeature | None]:
        """Sample operands with replacement (Figure 3)."""
        first = self.members[int(rng.integers(0, len(self.members)))]
        if arity == 1:
            return first, None
        second = self.members[int(rng.integers(0, len(self.members)))]
        return first, second

    def add(self, feature: GeneratedFeature) -> bool:
        """Append a qualified feature; reject duplicates and overflow."""
        if feature.name in self.names:
            return False
        if len(self.members) >= self.max_members:
            return False
        self.members.append(feature)
        return True
