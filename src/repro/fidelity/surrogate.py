"""Surrogate scoring for near-duplicate candidates (DIFER-style).

The evaluation service already observes that many cache *misses* land
in a quantile-sketch bucket an earlier candidate occupied — the
``n_near_duplicates`` counter introduced in PR 1 measured exactly this
headroom.  :class:`SurrogateGate` acts on it: it maintains a running
per-bucket estimator fitted online on every real full-CV score the
service computes, and serves a candidate from that estimator — no
downstream fit at all — when the bucket's confidence interval is tight
enough to stand in for the real score.  A bucket that is unknown, too
thin, or too noisy falls back to real CV (the fall-backs are counted:
approximation is never silent).

This is the laptop-scale analogue of DIFER's trained surrogate over
feature candidates: instead of a differentiable model over feature
strings, a Welford mean/variance per (base matrix, target, sketch
bucket) cell with a normal-approximation bound — fitted continuously,
no training phase, and conservative by construction (it can only serve
what it has repeatedly seen).
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["SurrogateGate"]


class _Welford:
    """Numerically stable running mean/variance of one bucket."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        if self.n < 2:
            return float("inf")
        return self.m2 / (self.n - 1)


class SurrogateGate:
    """Per-bucket fitted score estimator with a confidence gate.

    Parameters
    ----------
    min_observations:
        Real scores a bucket must have absorbed before it may serve.
        With one observation the variance is undefined, so the
        effective minimum for a finite bound is 2.
    max_halfwidth:
        Largest acceptable half-width of the ``z``-scaled confidence
        interval (``z * sqrt(variance / n)``); wider buckets fall back
        to real CV.
    z:
        Normal quantile of the interval (1.96 ~ 95%).
    max_buckets:
        LRU bound on tracked buckets, mirroring the service's
        near-duplicate map so long runs keep bounded memory.
    """

    def __init__(
        self,
        min_observations: int = 3,
        max_halfwidth: float = 0.02,
        z: float = 1.96,
        max_buckets: int = 8192,
    ) -> None:
        if min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        if max_halfwidth < 0.0:
            raise ValueError("max_halfwidth must be non-negative")
        if max_buckets < 1:
            raise ValueError("max_buckets must be positive")
        self.min_observations = min_observations
        self.max_halfwidth = max_halfwidth
        self.z = z
        self._max_buckets = max_buckets
        self._buckets: OrderedDict[str, _Welford] = OrderedDict()

    def __len__(self) -> int:
        return len(self._buckets)

    def observe(self, key: str, score: float) -> None:
        """Fit one real full-CV score into the bucket estimator."""
        stats = self._buckets.get(key)
        if stats is None:
            if len(self._buckets) >= self._max_buckets:
                self._buckets.popitem(last=False)
            stats = _Welford()
            self._buckets[key] = stats
        else:
            self._buckets.move_to_end(key)
        stats.add(float(score))

    def n_observations(self, key: str) -> int:
        stats = self._buckets.get(key)
        return 0 if stats is None else stats.n

    def halfwidth(self, key: str) -> float:
        """Current CI half-width for a bucket (inf when unservable)."""
        stats = self._buckets.get(key)
        if stats is None or stats.n < 2:
            return float("inf")
        return self.z * (stats.variance / stats.n) ** 0.5

    def serve(self, key: str) -> float | None:
        """Surrogate score for a bucket, or ``None`` to force real CV.

        Serves the fitted bucket mean only when the bucket has at
        least ``min_observations`` real scores *and* its confidence
        half-width is within ``max_halfwidth``.  Serving refreshes the
        bucket's LRU position but does not count as an observation —
        the estimator only ever fits real scores.
        """
        stats = self._buckets.get(key)
        if stats is None or stats.n < max(self.min_observations, 2):
            return None
        if self.halfwidth(key) > self.max_halfwidth:
            return None
        self._buckets.move_to_end(key)
        return stats.mean
