"""Unit tests for CSV round-trips."""

import numpy as np

from repro.frame import (
    Frame,
    frame_from_csv_string,
    frame_to_csv_string,
    read_csv,
    write_csv,
)


def test_round_trip_simple():
    frame = Frame({"a": [1.0, 2.5], "b": [-3.0, 0.0]})
    out = frame_from_csv_string(frame_to_csv_string(frame))
    assert out == frame


def test_round_trip_nan():
    frame = Frame({"a": [np.nan, 1.0]})
    out = frame_from_csv_string(frame_to_csv_string(frame))
    assert np.isnan(out["a"][0])
    assert out["a"][1] == 1.0


def test_round_trip_generated_feature_names():
    frame = Frame({"add(f1,f2)": [1.0], "log(f3)": [2.0]})
    out = frame_from_csv_string(frame_to_csv_string(frame))
    assert out.columns == ["add(f1,f2)", "log(f3)"]


def test_empty_string_gives_empty_frame():
    assert frame_from_csv_string("").shape == (0, 0)


def test_header_only():
    out = frame_from_csv_string("a,b\n")
    assert out.columns == ["a", "b"]
    assert out.n_rows == 0


def test_file_round_trip(tmp_path):
    frame = Frame({"x": [1.0, 2.0, 3.0]})
    path = tmp_path / "data.csv"
    write_csv(frame, path)
    assert read_csv(path) == frame


def test_precision_preserved():
    frame = Frame({"a": [1.23456789012]})
    out = frame_from_csv_string(frame_to_csv_string(frame))
    assert abs(out["a"][0] - 1.23456789012) < 1e-11
