"""CART decision trees (classifier and regressor) in vectorized numpy.

These are the building blocks of the Random Forest downstream task
(Section II, Evaluation Task).  The implementation favours the shape of
cost the paper measures — feature evaluation is *expensive relative to
feature generation* — while remaining fast enough that hundreds of
cross-validated evaluations finish on a laptop:

* Splits are exact (sort-based): at each node, every candidate feature is
  sorted once and the impurity of every possible threshold is computed in
  one vectorized pass using prefix sums.
* Prediction routes all rows through the tree level by level with boolean
  masks instead of per-row Python recursion.

Both trees accept ``max_features`` so the forest can do per-node feature
subsampling, and an externally supplied seed so runs are reproducible.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_matrix, check_X_y

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]

_LEAF = -1


def _resolve_max_features(max_features: int | str | None, n_features: int) -> int:
    """Number of candidate features examined per node."""
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    count = int(max_features)
    if count < 1:
        raise ValueError("max_features must be positive")
    return min(count, n_features)


class _BaseTree(BaseEstimator):
    """Shared growth/prediction machinery; subclasses define impurity."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        seed: int = 0,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        # Flat node arrays filled during fit.
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[np.ndarray] = []
        self.n_features_: int | None = None

    # -- subclass hooks -------------------------------------------------
    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _best_split_of_feature(
        self, column: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        """Return ``(gain, threshold)`` of the best split for one column."""
        raise NotImplementedError

    # -- growth ----------------------------------------------------------
    def _new_node(self) -> int:
        self._feature.append(_LEAF)
        self._threshold.append(0.0)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._value.append(np.empty(0))
        return len(self._feature) - 1

    def _fit_arrays(self, X: np.ndarray, y: np.ndarray) -> None:
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        n_candidates = _resolve_max_features(self.max_features, X.shape[1])
        root = self._new_node()
        # Depth-first explicit stack: (node_id, row_indices, depth).
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(len(y)), 0)]
        while stack:
            node, rows, depth = stack.pop()
            labels = y[rows]
            self._value[node] = self._leaf_value(labels)
            if (
                len(rows) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or self._is_pure(labels)
            ):
                continue
            candidates = rng.choice(X.shape[1], size=n_candidates, replace=False)
            best_gain, best_feature, best_threshold = 0.0, _LEAF, 0.0
            for feature in candidates:
                gain, threshold = self._best_split_of_feature(
                    X[rows, feature], labels
                )
                if gain > best_gain:
                    best_gain, best_feature, best_threshold = gain, feature, threshold
            if best_feature == _LEAF:
                continue
            goes_left = X[rows, best_feature] <= best_threshold
            left_rows, right_rows = rows[goes_left], rows[~goes_left]
            if (
                len(left_rows) < self.min_samples_leaf
                or len(right_rows) < self.min_samples_leaf
            ):
                continue
            self._feature[node] = int(best_feature)
            self._threshold[node] = float(best_threshold)
            left = self._new_node()
            right = self._new_node()
            self._left[node], self._right[node] = left, right
            stack.append((left, left_rows, depth + 1))
            stack.append((right, right_rows, depth + 1))

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.all(y == y[0]))

    # -- prediction --------------------------------------------------------
    def _leaf_of_rows(self, X: np.ndarray) -> np.ndarray:
        """Leaf node index for every row, via masked level-order routing."""
        if self.n_features_ is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        matrix = check_matrix(X, allow_nonfinite=True)
        if matrix.shape[1] != self.n_features_:
            raise ValueError(
                f"fitted on {self.n_features_} features, got {matrix.shape[1]}"
            )
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        position = np.zeros(matrix.shape[0], dtype=np.int64)
        active = feature[position] != _LEAF
        while active.any():
            rows = np.flatnonzero(active)
            nodes = position[rows]
            goes_left = (
                matrix[rows, feature[nodes]] <= threshold[nodes]
            )
            position[rows] = np.where(goes_left, left[nodes], right[nodes])
            active = feature[position] != _LEAF
        return position

    @property
    def n_nodes(self) -> int:
        return len(self._feature)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if not self._feature:
            return 0
        depths = {0: 0}
        maximum = 0
        for node in range(len(self._feature)):
            if self._feature[node] == _LEAF:
                continue
            for child in (self._left[node], self._right[node]):
                depths[child] = depths[node] + 1
                maximum = max(maximum, depths[child])
        return maximum


class DecisionTreeClassifier(_BaseTree):
    """CART classifier with Gini impurity and exact sorted splits."""

    def fit(self, X, y) -> "DecisionTreeClassifier":
        matrix, target = check_X_y(X, y)
        self.classes_ = np.unique(target)
        self._class_index = {c: i for i, c in enumerate(self.classes_)}
        encoded = np.searchsorted(self.classes_, target)
        self._n_classes = len(self.classes_)
        self._fit_arrays(matrix, encoded)
        return self

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y.astype(np.int64), minlength=self._n_classes)
        return counts / counts.sum()

    def _best_split_of_feature(
        self, column: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        order = np.argsort(column, kind="stable")
        values = column[order]
        labels = y[order].astype(np.int64)
        n = len(values)
        if values[0] == values[-1]:
            return 0.0, 0.0
        # Prefix class counts: counts[i, c] = #{labels[:i] == c}.
        one_hot = np.zeros((n, self._n_classes))
        one_hot[np.arange(n), labels] = 1.0
        prefix = np.cumsum(one_hot, axis=0)
        total = prefix[-1]
        # Split after position i (1..n-1): left = first i rows.
        left_counts = prefix[:-1]
        right_counts = total - left_counts
        left_n = np.arange(1, n, dtype=np.float64)
        right_n = n - left_n
        left_gini = 1.0 - np.sum(left_counts**2, axis=1) / left_n**2
        right_gini = 1.0 - np.sum(right_counts**2, axis=1) / right_n**2
        parent_gini = 1.0 - np.sum((total / n) ** 2)
        gain = parent_gini - (left_n * left_gini + right_n * right_gini) / n
        # A split between equal values is not realizable.
        valid = values[1:] > values[:-1]
        valid &= left_n >= self.min_samples_leaf
        valid &= right_n >= self.min_samples_leaf
        if not valid.any():
            return 0.0, 0.0
        gain = np.where(valid, gain, -np.inf)
        best = int(np.argmax(gain))
        threshold = (values[best] + values[best + 1]) / 2.0
        return float(gain[best]), float(threshold)

    def predict_proba(self, X) -> np.ndarray:
        leaves = self._leaf_of_rows(X)
        return np.vstack([self._value[node] for node in leaves])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


class DecisionTreeRegressor(_BaseTree):
    """CART regressor minimizing within-node variance (MSE criterion)."""

    def fit(self, X, y) -> "DecisionTreeRegressor":
        matrix, target = check_X_y(X, y)
        self._fit_arrays(matrix, target)
        return self

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.ptp(y) < 1e-12)

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([y.mean()])

    def _best_split_of_feature(
        self, column: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        order = np.argsort(column, kind="stable")
        values = column[order]
        target = y[order]
        n = len(values)
        if values[0] == values[-1]:
            return 0.0, 0.0
        prefix_sum = np.cumsum(target)
        prefix_sq = np.cumsum(target**2)
        total_sum, total_sq = prefix_sum[-1], prefix_sq[-1]
        left_n = np.arange(1, n, dtype=np.float64)
        right_n = n - left_n
        left_sum = prefix_sum[:-1]
        right_sum = total_sum - left_sum
        left_sq = prefix_sq[:-1]
        right_sq = total_sq - left_sq
        # SSE of each side: sum(y^2) - (sum(y))^2 / n.
        left_sse = left_sq - left_sum**2 / left_n
        right_sse = right_sq - right_sum**2 / right_n
        parent_sse = total_sq - total_sum**2 / n
        gain = (parent_sse - left_sse - right_sse) / n
        valid = values[1:] > values[:-1]
        valid &= left_n >= self.min_samples_leaf
        valid &= right_n >= self.min_samples_leaf
        if not valid.any():
            return 0.0, 0.0
        gain = np.where(valid, gain, -np.inf)
        best = int(np.argmax(gain))
        threshold = (values[best] + values[best + 1]) / 2.0
        return float(max(gain[best], 0.0)), float(threshold)

    def predict(self, X) -> np.ndarray:
        leaves = self._leaf_of_rows(X)
        return np.array([self._value[node][0] for node in leaves])
