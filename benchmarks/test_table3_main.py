"""Table III — main comparison over datasets x methods.

Paper shape: E-AFE attains the best or near-best score on most
datasets while running far fewer downstream evaluations; NFS is the
strongest prior AFE; AutoFSR needs the most evaluations; RTDLN is
erratic (near zero on small datasets).  The quick profile runs a
6-dataset subset with all 11 method columns; REPRO_BENCH_PROFILE=paper
runs the full grid at paper scale.

At a few-epoch bench budget, brute-force methods (AutoFSR/NFS) can
match learned ones on raw score, so the assertions encode the paper's
actual claim: E-AFE reaches *comparable* accuracy (small tolerance on
the mean) with a *fraction* of the evaluations, and beats the deep
baseline outright.
"""

import numpy as np

from repro.bench.experiments import format_table3, table3_main


def test_table3_main(benchmark, fpe_model):
    table = benchmark.pedantic(
        table3_main, kwargs={"fpe": fpe_model}, rounds=1, iterations=1
    )
    print("\n" + format_table3(table))
    methods = list(next(iter(table.values())).keys())
    assert len(methods) == 11
    means = {
        m: float(np.mean([table[d][m].best_score for d in table]))
        for m in methods
    }
    evals = {
        m: sum(table[d][m].n_downstream_evaluations for d in table)
        for m in methods
    }
    # Efficiency at comparable accuracy — the paper's core trade-off.
    assert means["E-AFE"] > means["AutoFSR"] - 0.06
    assert evals["E-AFE"] < 0.7 * evals["AutoFSR"]
    assert evals["E-AFE"] < 0.7 * evals["NFS"]
    # Two-stage + per-step credit is not worse than the single-stage
    # policy-gradient ablation.
    assert means["E-AFE"] >= means["E-AFE_R"] - 0.03
    # Learned AFE methods comfortably beat the deep baseline on these
    # small tabular datasets (the paper's RTDLN observation).
    assert means["E-AFE"] > means["RTDLN"]
    assert means["NFS"] > means["RTDLN"]
