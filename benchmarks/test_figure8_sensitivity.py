"""Figure 8 — hyperparameter sensitivity of E-AFE.

Paper shape: E-AFE is "not strictly sensitive" to thre, the MinHash
signature dimension, or the maximum order — scores wobble inside a
band rather than collapsing.  The bench sweeps each parameter and
asserts the spread across the sweep stays within a tolerance band of
the best value, mirroring the robustness claim.
"""

import numpy as np

from repro.bench.experiments import figure8_sensitivity, format_figure8


def test_figure8_sensitivity(benchmark):
    sweeps = benchmark.pedantic(figure8_sensitivity, rounds=1, iterations=1)
    print("\n" + format_figure8(sweeps))
    assert set(sweeps) == {"thre", "dimension", "max_order"}
    for parameter, points in sweeps.items():
        scores = np.array([p["score"] for p in points])
        assert len(scores) == 3
        assert np.isfinite(scores).all()
        # Robustness band: no configuration collapses relative to best.
        assert scores.max() - scores.min() < 0.15, parameter
