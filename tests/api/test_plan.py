"""FeaturePlan: artifact round-trips, identity plans, schema guards."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.api import PLAN_FORMAT_VERSION, FeaturePlan
from repro.core.engine import AFEResult, EngineConfig
from repro.frame import Frame
from repro.operators import Operator, default_registry

_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _plan(**overrides):
    kwargs = dict(
        feature_names=["f0", "mul(f0,f1)", "log(f2)"],
        input_columns=["f0", "f1", "f2"],
        fpe={"method": "ccws", "d": 8, "seed": 0, "thre": 0.01},
        provenance={"dataset": "unit", "method": "E-AFE"},
    )
    kwargs.update(overrides)
    return FeaturePlan(**kwargs)


class TestTransform:
    def test_frame_and_array_inputs_agree(self):
        plan = _plan()
        frame = Frame(
            {"f0": [1.0, 2.0], "f1": [3.0, 4.0], "f2": [5.0, 6.0]}
        )
        from_frame = plan.transform(frame)
        from_array = plan.transform(frame.to_array())
        assert from_frame.dtype == np.float64
        np.testing.assert_array_equal(from_frame, from_array)
        assert from_frame.shape == (2, 3)

    def test_expressions_vectorize_correctly(self):
        plan = _plan(feature_names=["mul(f0,f1)"])
        out = plan.transform(np.array([[2.0, 3.0, 0.0], [4.0, 5.0, 0.0]]))
        np.testing.assert_allclose(out[:, 0], [6.0, 20.0])

    def test_transform_frame_labels_outputs(self):
        plan = _plan()
        out = plan.transform_frame(np.ones((2, 3)))
        assert out.columns == ["f0", "mul(f0,f1)", "log(f2)"]

    def test_identity_plan_returns_input_unchanged(self):
        plan = _plan(feature_names=[])
        assert plan.is_identity
        X = np.arange(12, dtype=np.float64).reshape(4, 3)
        out = plan.transform(X)
        np.testing.assert_array_equal(out, X)
        assert plan.output_columns == ["f0", "f1", "f2"]
        assert plan.n_features == 3

    def test_wrong_array_width_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            _plan().transform(np.ones((2, 2)))

    def test_missing_frame_column_rejected(self):
        with pytest.raises(KeyError, match="missing columns"):
            _plan().transform(Frame({"f0": [1.0]}))

    def test_expressions_must_fit_input_schema(self):
        with pytest.raises(ValueError, match="absent from input_columns"):
            FeaturePlan(["mul(f0,f9)"], ["f0", "f1"])


class TestSerialization:
    def test_round_trip_equality(self, tmp_path):
        plan = _plan()
        path = tmp_path / "features.plan.json"
        plan.save(path)
        restored = FeaturePlan.load(path)
        assert restored == plan
        assert restored.to_dict() == plan.to_dict()
        assert restored.fpe == plan.fpe
        assert restored.provenance == plan.provenance

    def test_document_is_versioned_json(self, tmp_path):
        path = tmp_path / "p.json"
        _plan().save(path)
        document = json.loads(path.read_text())
        assert document["format_version"] == PLAN_FORMAT_VERSION
        assert document["registry_id"].startswith("ops-v1:")

    def test_unknown_version_rejected(self):
        payload = _plan().to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            FeaturePlan.from_dict(payload)

    def test_registry_mismatch_rejected(self):
        custom = default_registry()
        custom.register(Operator("twice", 1, lambda a: 2 * a))
        plan = FeaturePlan(["twice(f0)"], ["f0"], registry=custom)
        with pytest.raises(ValueError, match="operator-registry mismatch"):
            FeaturePlan.from_dict(plan.to_dict())
        # Loading against the registry it was built with works.
        restored = FeaturePlan.from_dict(plan.to_dict(), registry=custom)
        np.testing.assert_allclose(
            restored.transform(np.array([[3.0]])), [[6.0]]
        )

    def test_from_result_records_provenance(self):
        result = AFEResult(
            dataset="unit", method="E-AFE", task="C",
            base_score=0.6, best_score=0.7,
            selected_features=["f0", "sqrt(f1)"],
        )
        plan = FeaturePlan.from_result(
            result, input_columns=["f0", "f1"], config=EngineConfig()
        )
        provenance = plan.provenance
        assert provenance["dataset"] == "unit"
        assert provenance["method"] == "E-AFE"
        assert provenance["base_score"] == 0.6
        assert provenance["best_score"] == 0.7
        assert provenance["created_by"].startswith("repro ")
        assert len(provenance["config_hash"]) == 32


class TestFreshProcessBitIdentity:
    def test_subprocess_transform_bit_identical(self, tmp_path):
        """The acceptance bar: load+transform in a fresh OS process is
        bit-identical to the producing process's transform."""
        rng = np.random.default_rng(7)
        X = rng.normal(size=(64, 3))
        plan = _plan()
        expected = plan.transform(X)

        plan_path = tmp_path / "features.plan.json"
        x_path = tmp_path / "x.npy"
        out_path = tmp_path / "out.npy"
        plan.save(plan_path)
        np.save(x_path, X)

        environment = dict(os.environ)
        environment["PYTHONPATH"] = _SRC + os.pathsep + environment.get(
            "PYTHONPATH", ""
        )
        script = (
            "import sys\n"
            "import numpy as np\n"
            "from repro.api import FeaturePlan\n"
            "plan = FeaturePlan.load(sys.argv[1])\n"
            "np.save(sys.argv[3], plan.transform(np.load(sys.argv[2])))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script,
             str(plan_path), str(x_path), str(out_path)],
            env=environment, capture_output=True, text=True,
        )
        assert completed.returncode == 0, completed.stderr
        fresh = np.load(out_path)
        assert fresh.dtype == expected.dtype
        assert fresh.tobytes() == expected.tobytes()


class TestFingerprintAndCompiled:
    def test_fingerprint_covers_transform_content_only(self):
        # Same expressions + schema from different runs (provenance,
        # FPE identity) share one fingerprint — the DIFER-style reuse
        # key serving artifacts are addressed by.
        base = _plan()
        same_content = _plan(provenance={"dataset": "other"}, fpe=None)
        assert base.fingerprint == same_content.fingerprint
        assert base.fingerprint.startswith("plan-v1:")

    def test_fingerprint_changes_with_content(self):
        assert _plan().fingerprint != _plan(feature_names=["f0"]).fingerprint
        assert (
            _plan().fingerprint
            != _plan(input_columns=["f0", "f1", "f2", "f3"]).fingerprint
        )

    def test_compiled_handle_matches_transform(self):
        from repro.frame import Frame

        plan = _plan()
        X = np.random.default_rng(0).normal(size=(8, 3)) + 2.0
        frame = Frame(X, columns=plan.input_columns)
        assert plan.compiled(frame).tobytes() == plan.transform(X).tobytes()

    def test_identity_compiled_handle(self):
        from repro.frame import Frame

        plan = _plan(feature_names=[])
        X = np.random.default_rng(1).normal(size=(5, 3))
        frame = Frame(X, columns=plan.input_columns)
        assert plan.compiled.is_identity
        assert plan.compiled(frame).tobytes() == X.tobytes()


class TestDiff:
    def test_shared_and_exclusive_expressions(self):
        left = _plan(feature_names=["f0", "mul(f0,f1)", "log(f2)"])
        right = _plan(feature_names=["log(f2)", "div(f0,f1)"])
        diff = left.diff(right)
        assert diff["shared"] == ["log(f2)"]
        assert diff["only_left"] == ["f0", "mul(f0,f1)"]
        assert diff["only_right"] == ["div(f0,f1)"]
        assert diff["same_schema"] is True
        assert diff["same_registry"] is True

    def test_diff_is_order_preserving_and_symmetric(self):
        left = _plan(feature_names=["f0", "f1", "f2"])
        right = _plan(feature_names=["f2", "f0"])
        diff = left.diff(right)
        mirrored = right.diff(left)
        assert diff["shared"] == ["f0", "f2"]  # left order
        assert mirrored["shared"] == ["f2", "f0"]  # right order
        assert diff["only_left"] == mirrored["only_right"] == ["f1"]

    def test_schema_mismatch_flagged(self):
        left = _plan()
        right = _plan(input_columns=["f0", "f1", "f2", "extra"])
        assert left.diff(right)["same_schema"] is False

    def test_identity_plans_diff_empty(self):
        diff = _plan(feature_names=[]).diff(_plan(feature_names=[]))
        assert diff["shared"] == []
        assert diff["only_left"] == diff["only_right"] == []
