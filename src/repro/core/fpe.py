"""The Feature Pre-Evaluation (FPE) model (Section III-B, Algorithm 1).

FPE = sample compressor + feature pre-selector:

1. **Labelling (Eq. 3).**  On each public dataset, score the full
   feature set, then score every leave-one-feature-out residual set.
   Feature j is *effective* (label 1) iff removing it costs more than
   ``thre``:  ``L_j = sgn(A_0 - A_j - thre + thre) = [A_0 - A_j > thre]``
   — implemented exactly as Algorithm 1 lines 9–13.

2. **Signatures (Eq. 4).**  Every feature column is compressed by a
   weighted-MinHash :class:`~repro.hashing.SampleCompressor` into a
   fixed ``d``-dim vector, making features from datasets of any sample
   size comparable.

3. **Classifier.**  A binary classifier (logistic regression by
   default; any probabilistic classifier fits) trained with
   cross-entropy on (signature, label) pairs.

4. **Tuning (Eq. 6, Algorithm 1).**  Grid-search the hash family and
   signature dimension maximizing validation *recall* subject to
   precision > 0 and recall < 1 — recall-first because a false
   negative (dropping a good feature) hurts the search, while a false
   positive only costs one wasted downstream evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.generators import TabularTask
from ..hashing.compressor import SampleCompressor
from ..ml.base import BaseEstimator, clone
from ..ml.linear import LogisticRegression
from ..ml.metrics import precision_score, recall_score
from .evaluation import DownstreamEvaluator

__all__ = [
    "FeatureLabel",
    "label_features",
    "label_generated_features",
    "FPEModel",
    "tune_fpe",
]


@dataclass(frozen=True)
class FeatureLabel:
    """One labelled feature from the pre-training corpus."""

    dataset: str
    feature: str
    gain: float  # A_0 - A_j : positive when the feature helped
    label: int  # 1 = effective, 0 = not


def label_features(
    task: TabularTask,
    evaluator: DownstreamEvaluator,
    thre: float = 0.01,
) -> list[FeatureLabel]:
    """Leave-one-feature-out labelling of one dataset (Eq. 3).

    Datasets with a single feature yield nothing (no residual set).
    """
    if thre < 0:
        raise ValueError("thre must be non-negative")
    columns = task.X.columns
    if len(columns) < 2:
        return []
    matrix = task.X.to_array()
    base_score = evaluator.evaluate(matrix, task.y)
    labels = []
    for j, name in enumerate(columns):
        residual = np.delete(matrix, j, axis=1)
        residual_score = evaluator.evaluate(residual, task.y)
        gain = base_score - residual_score
        labels.append(
            FeatureLabel(
                dataset=task.name,
                feature=name,
                gain=gain,
                label=int(gain > thre),
            )
        )
    return labels


def label_generated_features(
    task: TabularTask,
    evaluator: DownstreamEvaluator,
    thre: float = 0.01,
    n_candidates: int = 10,
    max_order: int = 3,
    seed: int = 0,
) -> list[tuple[np.ndarray, int]]:
    """Label random *generated* features by their add-one score gain.

    The deployed FPE judges engine-generated compositions, whose value
    distribution differs from raw corpus columns.  To align the
    pre-training distribution with deployment, we synthesize random
    transformations on each corpus dataset and label feature f with
    ``[A(D + f) - A(D) > thre]`` — the add-one mirror image of Eq. 3's
    leave-one-out.  Returns ``(column, label)`` pairs.
    """
    from ..operators.composer import FeatureSubgroup, GeneratedFeature, compose
    from ..operators.registry import default_registry

    if n_candidates < 1:
        raise ValueError("n_candidates must be positive")
    registry = default_registry()
    rng = np.random.default_rng(seed)
    matrix = task.X.to_array()
    base_score = evaluator.evaluate(matrix, task.y)
    # One pooled subgroup over all original features lets compositions
    # mix columns, like binary actions in the engine do.
    roots = [
        GeneratedFeature(name, task.X[name], order=1, origin=name)
        for name in task.X.columns
    ]
    pool = FeatureSubgroup(roots[0], max_members=len(roots) + n_candidates)
    for root in roots[1:]:
        pool.add(root)
    labelled: list[tuple[np.ndarray, int]] = []
    attempts = 0
    while len(labelled) < n_candidates and attempts < n_candidates * 10:
        attempts += 1
        operator = registry.by_index(int(rng.integers(0, len(registry))))
        first, second = pool.sample_operands(rng, operator.arity)
        feature = compose(operator, first, second)
        if feature.order > max_order or feature.is_degenerate():
            continue
        if feature.name in pool.names:
            continue
        score = evaluator.evaluate(
            np.column_stack([matrix, feature.values]), task.y
        )
        labelled.append((feature.values, int(score - base_score > thre)))
        pool.add(feature)
    return labelled


@dataclass
class FPEModel:
    """Pre-trained feature-validness classifier over hashed signatures.

    Parameters
    ----------
    method / d / seed:
        Sample-compressor configuration (paper defaults: CCWS, d=48).
    classifier:
        Unfitted probabilistic classifier prototype; cloned at fit time.
    thre:
        Score-gain threshold used during labelling (Fig. 6; default .01).
    """

    method: str = "ccws"
    d: int = 48
    seed: int = 0
    classifier: BaseEstimator = field(
        default_factory=lambda: LogisticRegression(n_iter=300, lr=0.3)
    )
    thre: float = 0.01
    _fitted: BaseEstimator | None = field(default=None, init=False, repr=False)
    _single_class: int | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.compressor = SampleCompressor(
            method=self.method, d=self.d, seed=self.seed
        )

    # -- representation -----------------------------------------------------
    def signature(self, column: np.ndarray) -> np.ndarray:
        """H = MinHash(F, d): the classifier-ready feature signature."""
        return self.compressor.compress_column(column)

    def signatures(self, columns: list[np.ndarray]) -> np.ndarray:
        """Stack per-column signatures into an (n, d) matrix."""
        return np.vstack([self.signature(column) for column in columns])

    # -- training ---------------------------------------------------------
    def fit_signatures(self, H: np.ndarray, labels: np.ndarray) -> "FPEModel":
        """Train the binary classifier on precomputed signatures."""
        H = np.asarray(H, dtype=np.float64)
        labels = np.asarray(labels).reshape(-1)
        if H.shape[0] != labels.shape[0]:
            raise ValueError("signatures and labels must align")
        unique = np.unique(labels)
        if len(unique) < 2:
            # All-positive or all-negative corpus: degenerate but legal;
            # predict the single observed class with certainty.
            self._single_class = int(unique[0])
            self._fitted = None
            return self
        self._single_class = None
        self._fitted = clone(self.classifier).fit(H, labels)
        return self

    def fit(
        self,
        corpus: list[TabularTask],
        evaluator_factory,
        generated_per_dataset: int = 8,
    ) -> "FPEModel":
        """Label a corpus, then train the classifier (Algorithm 1).

        ``evaluator_factory(task)`` must return a
        :class:`DownstreamEvaluator` for a given dataset (classification
        and regression entries need different metrics).

        Besides Eq. 3's leave-one-feature-out labels on the raw corpus
        columns, ``generated_per_dataset`` random transformed features
        per dataset are labelled by their add-one gain, aligning the
        training distribution with the generated features the model
        will filter at deployment time.
        """
        signatures, labels = [], []
        for task in corpus:
            evaluator = evaluator_factory(task)
            for row in label_features(task, evaluator, self.thre):
                signatures.append(self.signature(task.X[row.feature]))
                labels.append(row.label)
            if generated_per_dataset > 0:
                for column, label in label_generated_features(
                    task,
                    evaluator,
                    thre=self.thre,
                    n_candidates=generated_per_dataset,
                    seed=self.seed,
                ):
                    signatures.append(self.signature(column))
                    labels.append(label)
        if not signatures:
            raise ValueError("corpus produced no labelled features")
        return self.fit_signatures(np.vstack(signatures), np.array(labels))

    # -- inference --------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._fitted is not None or self._single_class is not None

    def predict_proba_signature(self, H: np.ndarray) -> np.ndarray:
        """P(effective) for each signature row."""
        H = np.asarray(H, dtype=np.float64)
        if H.ndim == 1:
            H = H.reshape(1, -1)
        if self._single_class is not None:
            return np.full(H.shape[0], float(self._single_class))
        if self._fitted is None:
            raise RuntimeError("FPEModel is not fitted")
        probabilities = self._fitted.predict_proba(H)
        classes = list(self._fitted.classes_)
        positive_column = classes.index(1) if 1 in classes else len(classes) - 1
        return probabilities[:, positive_column]

    def predict_proba(self, column: np.ndarray) -> float:
        """Eq. 7: p = C_D(MinHash(feature, d)) for one feature column."""
        return float(self.predict_proba_signature(self.signature(column))[0])

    def predict(self, column: np.ndarray) -> int:
        """Hard validness decision: 1 keeps the feature for evaluation."""
        return int(self.predict_proba(column) >= 0.5)

    # -- validation ------------------------------------------------------------
    def validation_scores(
        self, H: np.ndarray, labels: np.ndarray
    ) -> tuple[float, float]:
        """(precision, recall) on a validation set (Eq. 5)."""
        predictions = (self.predict_proba_signature(H) >= 0.5).astype(int)
        labels = np.asarray(labels).reshape(-1)
        return (
            precision_score(labels, predictions, average="binary"),
            recall_score(labels, predictions, average="binary"),
        )


def tune_fpe(
    train_corpus: list[TabularTask],
    validation_corpus: list[TabularTask],
    evaluator_factory,
    methods: tuple[str, ...] = ("ccws", "icws", "pcws", "licws"),
    dimensions: tuple[int, ...] = (16, 48, 96),
    thre: float = 0.01,
    seed: int = 0,
) -> tuple[FPEModel, dict]:
    """Algorithm 1's outer loop: argmax recall over (method, d).

    Labels are computed once per corpus (they do not depend on the hash
    configuration); each candidate configuration re-signatures the
    features and trains a fresh classifier.  Returns the best model and
    a report of every configuration tried.
    """
    def collect(corpus: list[TabularTask]) -> tuple[list[np.ndarray], np.ndarray]:
        columns, labels = [], []
        for task in corpus:
            evaluator = evaluator_factory(task)
            for row in label_features(task, evaluator, thre):
                columns.append(np.asarray(task.X[row.feature]))
                labels.append(row.label)
        return columns, np.array(labels)

    train_columns, train_labels = collect(train_corpus)
    validation_columns, validation_labels = collect(validation_corpus)
    if len(train_columns) == 0 or len(validation_columns) == 0:
        raise ValueError("tuning corpora produced no labelled features")

    best_model: FPEModel | None = None
    best_recall = -1.0
    report: dict = {"trials": []}
    for method in methods:
        for d in dimensions:
            model = FPEModel(method=method, d=d, seed=seed, thre=thre)
            model.fit_signatures(
                model.signatures(train_columns), train_labels
            )
            precision, recall = model.validation_scores(
                model.signatures(validation_columns), validation_labels
            )
            report["trials"].append(
                {"method": method, "d": d, "precision": precision, "recall": recall}
            )
            # Eq. 6 constraints: Prec > 0 and Rec < 1 (a degenerate
            # always-positive classifier trivially reaches recall 1).
            feasible = precision > 0.0 and recall < 1.0
            if feasible and recall > best_recall:
                best_recall = recall
                best_model = model
    if best_model is None:
        # Every configuration was infeasible (tiny corpora); fall back to
        # the best raw recall so callers still get a usable model.
        best_trial = max(report["trials"], key=lambda t: t["recall"])
        best_model = FPEModel(
            method=best_trial["method"], d=best_trial["d"], seed=seed, thre=thre
        )
        best_model.fit_signatures(
            best_model.signatures(train_columns), train_labels
        )
        best_recall = best_trial["recall"]
    report["best"] = {
        "method": best_model.method,
        "d": best_model.d,
        "recall": best_recall,
    }
    return best_model, report
