"""eval_fidelity="off" is inert: trajectories bit-identical to before.

The acceptance criterion for the default: a config that never mentions
fidelity, a config that says ``"off"`` explicitly, and a service built
with no controller at all must produce bit-identical engine
trajectories on every backend — the fidelity subsystem must be
unobservable until switched on.
"""

import numpy as np
import pytest

from repro.core import default_fpe
from repro.core.engine import EAFE, EngineConfig
from repro.core.evaluation import DownstreamEvaluator
from repro.datasets import make_classification
from repro.eval import EvaluationService
from repro.store import MemoryBackend


def _config(**overrides):
    params = dict(
        n_epochs=2, stage1_epochs=1, transforms_per_agent=2,
        n_splits=2, n_estimators=3, max_agents=4, seed=0,
    )
    params.update(overrides)
    return EngineConfig(**params)


def _trajectory(result):
    return (
        result.base_score,
        result.best_score,
        tuple(result.selected_features),
        tuple(record.best_score for record in result.history),
    )


@pytest.fixture(scope="module")
def task():
    return make_classification(n_samples=70, n_features=3, seed=0)


@pytest.fixture(scope="module")
def fpe():
    return default_fpe()


class TestOffIsInert:
    def test_default_config_is_off(self):
        assert EngineConfig().eval_fidelity == "off"

    def test_service_from_off_config_has_no_controller(self):
        evaluator = DownstreamEvaluator(task="C", n_splits=2, seed=0)
        service = EvaluationService.from_config(
            evaluator, _config(), MemoryBackend()
        )
        assert service.fidelity is None
        service.close()

    @pytest.mark.parametrize("backend", ["serial", "process", "pool"])
    def test_off_trajectory_bit_identical_per_backend(
        self, task, fpe, backend
    ):
        """Explicit "off" == default config, per backend, bit for bit."""
        default = EAFE(fpe, _config(eval_backend=backend)).fit(task)
        explicit = EAFE(
            fpe, _config(eval_backend=backend, eval_fidelity="off")
        ).fit(task)
        assert _trajectory(explicit) == _trajectory(default)
        for result in (default, explicit):
            assert result.n_lowfi_scored == 0
            assert result.n_promoted == 0
            assert result.n_surrogate_served == 0
            assert result.n_surrogate_fallbacks == 0
            assert result.n_audited == 0
            assert result.fidelity_regret == 0.0

    def test_off_scores_match_service_without_controller(self):
        """from_config("off") == a raw pre-fidelity service construction."""
        rng = np.random.default_rng(0)
        base = rng.normal(size=(60, 3))
        y = (base[:, 0] > 0).astype(np.float64)
        columns = [rng.normal(size=60) for _ in range(5)]
        evaluator_a = DownstreamEvaluator(task="C", n_splits=2, seed=0)
        evaluator_b = DownstreamEvaluator(task="C", n_splits=2, seed=0)
        via_config = EvaluationService.from_config(
            evaluator_a, _config(eval_fidelity="off"), MemoryBackend()
        )
        raw = EvaluationService(evaluator_b, cache=MemoryBackend())
        assert via_config.score_batch(base, columns, y) == raw.score_batch(
            base, columns, y
        )
        assert via_config.stats == raw.stats
        via_config.close()
        raw.close()


class TestFidelityOnChangesCells:
    def test_fidelity_on_disables_cross_agent_speculation(self, task, fpe):
        result = EAFE(
            fpe,
            _config(
                eval_backend="pool",
                eval_speculation=True,
                eval_fidelity="ladder:promote=0.5,rows=0.5",
            ),
        ).fit(task)
        assert result.n_speculative_submitted == 0
        assert result.n_lowfi_scored > 0
