"""Comparator methods: Table III baselines + related-work systems (§V-A)."""

from .autofsr import AutoFSR
from .explorekit import ExploreKit
from .hybrid import DlThenFe, FeThenDl
from .lfe import LFE
from .nfs import NFS
from .random_afe import RandomAFE
from .rtdln import RTDLNBaseline
from .transformation_graph import TransformationGraph

__all__ = [
    "NFS",
    "AutoFSR",
    "RTDLNBaseline",
    "FeThenDl",
    "DlThenFe",
    "RandomAFE",
    "TransformationGraph",
    "LFE",
    "ExploreKit",
]
