"""Figure 7 — learning curves: elapsed time vs best-so-far score.

Paper shape: all four methods improve over time; E-AFE saturates with
less work than NFS because each of its epochs performs fewer downstream
evaluations (its curve ends earlier on the time axis at paper scale).
At bench scale the machine-independent form of that claim is the
evaluation count and the time spent inside downstream evaluation, so
the assertions target those.
"""

from repro.bench.experiments import figure7_learning_curves, format_figure7


def test_figure7_learning_curves(benchmark, fpe_model):
    data = benchmark.pedantic(
        figure7_learning_curves,
        kwargs={"dataset": "PimaIndian", "fpe": fpe_model, "n_epochs": 4},
        rounds=1,
        iterations=1,
    )
    print("\n" + format_figure7(data))
    curves = data["curves"]
    assert set(curves) == {"AutoFSR", "NFS", "E-AFE_D", "E-AFE"}
    for method, points in curves.items():
        scores = [score for _, score in points]
        assert scores == sorted(scores), method  # best-so-far is monotone
        times = [elapsed for elapsed, _ in points]
        assert times == sorted(times), method
    # Same epoch budget, filtered candidates => E-AFE runs fewer
    # downstream evaluations.  (Per-evaluation *time* is not asserted:
    # E-AFE's accepted features widen its matrices, so at bench scale
    # its fewer evaluations can individually cost more — the paper's
    # efficiency claim is about evaluation counts, which the count
    # assertion pins, and about wall-clock at 200-epoch scale.)
    assert data["evaluations"]["E-AFE"] < data["evaluations"]["NFS"]
