"""Preprocessing transformers (sklearn.preprocessing stand-ins).

These cover the operations the paper's pipeline needs before and during
feature engineering: min-max scaling (also one of the unary operators),
standardization, label encoding of targets, mean imputation of the
NaN/inf values that generated features introduce, and quantile binning
(used to binarize real-valued features for classic MinHash).
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_matrix

__all__ = [
    "MinMaxScaler",
    "StandardScaler",
    "LabelEncoder",
    "MeanImputer",
    "QuantileBinner",
]


class MinMaxScaler(BaseEstimator):
    """Scale each column to ``[feature_min, feature_max]`` (default [0,1]).

    Constant columns map to the lower bound rather than dividing by zero.
    """

    def __init__(self, feature_min: float = 0.0, feature_max: float = 1.0) -> None:
        if feature_max <= feature_min:
            raise ValueError("feature_max must exceed feature_min")
        self.feature_min = feature_min
        self.feature_max = feature_max
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        matrix = check_matrix(X)
        self.data_min_ = matrix.min(axis=0)
        self.data_max_ = matrix.max(axis=0)
        return self

    def transform(self, X) -> np.ndarray:
        if self.data_min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        matrix = check_matrix(X)
        span = self.data_max_ - self.data_min_
        safe_span = np.where(span == 0.0, 1.0, span)
        unit = (matrix - self.data_min_) / safe_span
        unit = np.where(span == 0.0, 0.0, unit)
        width = self.feature_max - self.feature_min
        return self.feature_min + unit * width

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.data_min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        matrix = check_matrix(X)
        width = self.feature_max - self.feature_min
        unit = (matrix - self.feature_min) / width
        return self.data_min_ + unit * (self.data_max_ - self.data_min_)


class StandardScaler(BaseEstimator):
    """Zero-mean, unit-variance scaling; constant columns stay at zero."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        matrix = check_matrix(X)
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        self.scale_ = np.where(std == 0.0, 1.0, std)
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return (check_matrix(X) - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return check_matrix(X) * self.scale_ + self.mean_


class LabelEncoder(BaseEstimator):
    """Map arbitrary label values to contiguous integers 0..K-1."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        values = np.asarray(y).reshape(-1)
        if values.shape[0] == 0:
            raise ValueError("cannot fit LabelEncoder on empty labels")
        self.classes_ = np.unique(values)
        return self

    def transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        values = np.asarray(y).reshape(-1)
        indices = np.searchsorted(self.classes_, values)
        indices = np.clip(indices, 0, len(self.classes_) - 1)
        if not np.array_equal(self.classes_[indices], values):
            unknown = set(np.asarray(values).tolist()) - set(self.classes_.tolist())
            raise ValueError(f"labels not seen during fit: {sorted(unknown)!r}")
        return indices.astype(np.int64)

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, indices) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= len(self.classes_)):
            raise ValueError("encoded labels out of range")
        return self.classes_[idx]


class MeanImputer(BaseEstimator):
    """Replace non-finite entries with the column-wise finite mean.

    Columns that contain no finite value at all are filled with 0.
    """

    def __init__(self) -> None:
        self.fill_: np.ndarray | None = None

    def fit(self, X) -> "MeanImputer":
        matrix = check_matrix(X, allow_nonfinite=True)
        fill = np.zeros(matrix.shape[1])
        for j in range(matrix.shape[1]):
            finite = matrix[np.isfinite(matrix[:, j]), j]
            fill[j] = finite.mean() if finite.size else 0.0
        self.fill_ = fill
        return self

    def transform(self, X) -> np.ndarray:
        if self.fill_ is None:
            raise RuntimeError("MeanImputer is not fitted")
        matrix = check_matrix(X, allow_nonfinite=True).copy()
        mask = ~np.isfinite(matrix)
        if mask.any():
            matrix[mask] = np.broadcast_to(self.fill_, matrix.shape)[mask]
        return matrix

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class QuantileBinner(BaseEstimator):
    """Discretize each column into ``n_bins`` quantile buckets.

    Classic (unweighted) MinHash operates on sets; quantile binning turns
    a real-valued feature column into a bag of ``(column, bin)`` tokens so
    set-based sketches apply.
    """

    def __init__(self, n_bins: int = 8) -> None:
        if n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        self.n_bins = n_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X) -> "QuantileBinner":
        matrix = check_matrix(X)
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        self.edges_ = [
            np.unique(np.quantile(matrix[:, j], quantiles))
            for j in range(matrix.shape[1])
        ]
        return self

    def transform(self, X) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("QuantileBinner is not fitted")
        matrix = check_matrix(X)
        if matrix.shape[1] != len(self.edges_):
            raise ValueError(
                f"fitted on {len(self.edges_)} columns, got {matrix.shape[1]}"
            )
        out = np.empty_like(matrix, dtype=np.int64)
        for j, edges in enumerate(self.edges_):
            out[:, j] = np.searchsorted(edges, matrix[:, j], side="right")
        return out

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
