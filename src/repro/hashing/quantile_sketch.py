"""Quantile data sketch — the representation LFE used (paper §V-B).

Learning Feature Engineering (Nargesian et al., IJCAI 2017) represents
a feature by fixed-size quantile summaries of its values.  As a
signature backend it captures the marginal distribution's shape
directly (no hashing), at the cost of losing all sample alignment —
exactly the trade-off the paper's Q6 discussion implies MinHash avoids.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """d evenly spaced quantiles of the (sanitized, scaled) column."""

    def __init__(self, d: int = 48, seed: int = 0) -> None:
        if d < 2:
            raise ValueError("quantile sketch needs d >= 2")
        self.d = d
        self.seed = seed  # unused; kept for backend interface parity
        self._levels = np.linspace(0.0, 1.0, d)

    def compress(self, column: np.ndarray) -> np.ndarray:
        """d-quantile summary in [0, 1] after min-max scaling."""
        values = np.asarray(column, dtype=np.float64).reshape(-1)
        if values.size == 0:
            raise ValueError("cannot sketch an empty column")
        values = np.nan_to_num(values, posinf=0.0, neginf=0.0)
        low, high = values.min(), values.max()
        if high > low:
            values = (values - low) / (high - low)
        else:
            values = np.zeros_like(values)
        return np.quantile(values, self._levels)
