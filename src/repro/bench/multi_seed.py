"""Multi-seed robustness runs (paper Q8: "Is the improvement robust?").

The paper answers Q8 with p-values across datasets (Table VI); the
complementary per-dataset question — is a method's score stable across
random seeds? — is what this module measures.  A method's reported
number means little if re-seeding swings it more than the headline
improvement.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from ..core.engine import AFEResult, EngineConfig
from ..core.fpe import FPEModel
from ..datasets.generators import TabularTask
from ..store import RunStore
from .harness import run_single

__all__ = ["SeedSweep", "run_multi_seed", "format_seed_sweep"]


@dataclass
class SeedSweep:
    """Aggregated scores of one method across seeds."""

    method: str
    dataset: str
    seeds: list[int]
    best_scores: list[float]
    evaluations: list[int]

    @property
    def mean(self) -> float:
        return float(np.mean(self.best_scores))

    @property
    def std(self) -> float:
        return float(np.std(self.best_scores))

    @property
    def spread(self) -> float:
        """max - min: the worst-case seed sensitivity."""
        return float(np.max(self.best_scores) - np.min(self.best_scores))


def run_multi_seed(
    method: str,
    task: TabularTask,
    config: EngineConfig,
    seeds: Sequence[int] = (0, 1, 2),
    fpe: FPEModel | None = None,
    run_store: RunStore | None = None,
    resume: bool | None = None,
) -> SeedSweep:
    """Run one method on one dataset once per seed.

    Each seed is one run-store cell: with a store and resume active
    (see :func:`repro.bench.harness.run_single`), seeds completed by an
    earlier — possibly killed — sweep are replayed instead of re-run.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    best_scores, evaluations = [], []
    for seed in seeds:
        seeded = replace(config, seed=seed)
        result: AFEResult = run_single(
            task, method, seeded, fpe=fpe, run_store=run_store, resume=resume
        )
        best_scores.append(result.best_score)
        evaluations.append(result.n_downstream_evaluations)
    return SeedSweep(
        method=method,
        dataset=task.name,
        seeds=list(seeds),
        best_scores=best_scores,
        evaluations=evaluations,
    )


def format_seed_sweep(sweeps: Sequence[SeedSweep]) -> str:
    """Aligned text table of per-method seed statistics."""
    from .harness import format_table

    rows = [
        [s.method, s.dataset, s.mean, s.std, s.spread, int(np.mean(s.evaluations))]
        for s in sweeps
    ]
    return format_table(
        ["Method", "Dataset", "Mean", "Std", "Spread", "MeanEvals"], rows
    )
