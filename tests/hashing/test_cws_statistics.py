"""Statistical tests on the CWS estimators (larger-sample checks).

Complementary to test_cws.py's unit tests: these verify estimator
*quality* — concentration with signature length, and correct relative
ordering of similarity estimates across a gradient of perturbations.
"""

import numpy as np
import pytest

from repro.hashing import ICWS, SampleCompressor, generalized_jaccard


class TestConcentration:
    def test_estimator_variance_shrinks_with_d(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(size=120)
        b = np.clip(a + rng.normal(0, 0.2, 120), 0, None)
        truth = generalized_jaccard(a, b)

        def errors(d, n_trials=8):
            out = []
            for trial in range(n_trials):
                sampler = ICWS(d=d, seed=100 + trial)
                sig_a, _ = sampler.signature(a)
                sig_b, _ = sampler.signature(b)
                out.append(abs(float(np.mean(sig_a == sig_b)) - truth))
            return np.mean(out)

        assert errors(512) < errors(16) + 0.02

    def test_similarity_ordering_over_noise_gradient(self):
        rng = np.random.default_rng(1)
        compressor = SampleCompressor("icws", d=512, seed=0)
        base = rng.uniform(size=300)
        sims = []
        for sigma in (0.0, 0.05, 0.2, 0.8):
            noisy = np.clip(base + rng.normal(0, sigma, 300), 0, None)
            sims.append(compressor.similarity(base, noisy))
        assert sims[0] == pytest.approx(1.0)
        assert sims == sorted(sims, reverse=True)

    def test_collision_rate_tracks_gj_across_pairs(self):
        # Across many random pairs, the element-collision estimate and
        # true generalized Jaccard must be strongly rank-correlated.
        rng = np.random.default_rng(2)
        sampler = ICWS(d=256, seed=0)
        estimates, truths = [], []
        for _ in range(12):
            a = rng.uniform(size=100)
            b = np.clip(a + rng.normal(0, rng.uniform(0.01, 1.0), 100), 0, None)
            sig_a, _ = sampler.signature(a)
            sig_b, _ = sampler.signature(b)
            estimates.append(float(np.mean(sig_a == sig_b)))
            truths.append(generalized_jaccard(a, b))
        correlation = np.corrcoef(estimates, truths)[0, 1]
        assert correlation > 0.8
