"""Integration tests for the AFE engine, E-AFE, and its variants."""

import numpy as np
import pytest

from repro.core import (
    AFEEngine,
    EAFE,
    EngineConfig,
    FPEModel,
    KeepAllFilter,
    make_evaluator_factory,
)
from repro.core.variants import VARIANT_NAMES, make_variant
from repro.datasets import make_classification, make_regression


def _tiny_config(**overrides):
    params = {
        "n_epochs": 2,
        "stage1_epochs": 1,
        "transforms_per_agent": 2,
        "n_splits": 3,
        "n_estimators": 3,
        "max_agents": 5,
        "seed": 0,
    }
    params.update(overrides)
    return EngineConfig(**params)


def _tiny_fpe():
    corpus = [make_classification(n_samples=60, n_features=4, seed=s) for s in range(2)]
    model = FPEModel(d=16, seed=0)
    model.fit(corpus, make_evaluator_factory(), generated_per_dataset=4)
    return model


FPE = _tiny_fpe()


class TestEngineConfig:
    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            EngineConfig(n_epochs=0)

    def test_invalid_transforms(self):
        with pytest.raises(ValueError):
            EngineConfig(transforms_per_agent=0)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            EngineConfig(lam=1.0)


class TestAFEEngineBasics:
    def test_runs_end_to_end_classification(self):
        task = make_classification(n_samples=80, n_features=4, seed=0)
        result = AFEEngine(KeepAllFilter(), _tiny_config()).fit(task)
        assert result.best_score >= result.base_score
        assert result.n_downstream_evaluations > 0
        assert len(result.history) == 2

    def test_runs_end_to_end_regression(self):
        task = make_regression(n_samples=80, n_features=4, seed=0)
        result = AFEEngine(KeepAllFilter(), _tiny_config()).fit(task)
        assert result.task == "R"
        assert result.best_score >= result.base_score

    def test_history_monotone_in_evals_and_score(self):
        task = make_classification(n_samples=80, n_features=4, seed=1)
        result = AFEEngine(KeepAllFilter(), _tiny_config(n_epochs=3)).fit(task)
        evals = [record.n_evaluations for record in result.history]
        scores = [record.best_score for record in result.history]
        assert evals == sorted(evals)
        assert scores == sorted(scores)

    def test_selected_features_include_improvements_only_when_found(self):
        task = make_classification(n_samples=80, n_features=4, seed=2)
        result = AFEEngine(KeepAllFilter(), _tiny_config()).fit(task)
        assert len(result.selected_features) >= 4

    def test_improvement_property(self):
        task = make_classification(n_samples=80, n_features=4, seed=3)
        result = AFEEngine(KeepAllFilter(), _tiny_config()).fit(task)
        assert result.improvement == pytest.approx(
            result.best_score - result.base_score
        )

    def test_agent_prefilter_caps_feature_count(self):
        task = make_classification(n_samples=80, n_features=12, seed=4)
        engine = AFEEngine(KeepAllFilter(), _tiny_config(max_agents=4))
        working = engine._select_agent_features(task)
        assert working.n_features == 4

    def test_prefilter_keeps_small_datasets_intact(self):
        task = make_classification(n_samples=80, n_features=3, seed=5)
        engine = AFEEngine(KeepAllFilter(), _tiny_config(max_agents=8))
        assert engine._select_agent_features(task) is task

    def test_deterministic_given_seed(self):
        task = make_classification(n_samples=80, n_features=4, seed=6)
        a = AFEEngine(KeepAllFilter(), _tiny_config()).fit(task)
        b = AFEEngine(KeepAllFilter(), _tiny_config()).fit(task)
        assert a.best_score == b.best_score
        assert a.n_downstream_evaluations == b.n_downstream_evaluations


class TestEAFE:
    def test_two_stage_forced_on(self):
        engine = EAFE(FPE, _tiny_config(two_stage=False))
        assert engine.config.two_stage is True

    def test_filters_some_candidates(self):
        task = make_classification(n_samples=100, n_features=5, seed=7)
        result = EAFE(FPE, _tiny_config(n_epochs=3)).fit(task)
        assert result.n_generated >= result.n_filtered_out
        # Every generated candidate either got filtered or evaluated —
        # where "evaluated" means a real downstream fit *or* a cache hit
        # (duplicate candidates never pay a second CV).
        evaluated = result.n_generated - result.n_filtered_out
        # +1 for the base-score evaluation.
        assert (
            result.n_downstream_evaluations + result.n_cache_hits
            == evaluated + 1
        )

    def test_fpe_reduces_evaluations_vs_keep_all(self):
        task = make_classification(n_samples=100, n_features=5, seed=8)
        config = _tiny_config(n_epochs=3)
        eafe = EAFE(FPE, config).fit(task)
        keep_all = AFEEngine(KeepAllFilter(), config).fit(task)
        assert eafe.n_downstream_evaluations <= keep_all.n_downstream_evaluations

    def test_method_name(self):
        assert EAFE(FPE, _tiny_config()).method_name == "E-AFE"

    def test_does_not_mutate_caller_config(self):
        # Regression: EAFE used to set two_stage/per_step_rewards on the
        # caller's EngineConfig object, leaking the overrides into every
        # other engine sharing that config.
        shared = _tiny_config(two_stage=False, per_step_rewards=False)
        engine = EAFE(FPE, shared)
        assert engine.config.two_stage is True
        assert engine.config.per_step_rewards is True
        assert shared.two_stage is False
        assert shared.per_step_rewards is False

    def test_repeat_fit_hits_cache(self):
        # Same engine, same task: the persistent cache replays every
        # candidate score instead of refitting, and scores are identical.
        task = make_classification(n_samples=80, n_features=4, seed=10)
        engine = EAFE(FPE, _tiny_config())
        first = engine.fit(task)
        second = engine.fit(task)
        assert second.best_score == first.best_score
        assert second.n_cache_hits > 0
        assert second.n_downstream_evaluations < first.n_downstream_evaluations


class TestVariants:
    def test_all_variants_construct_and_run(self):
        task = make_classification(n_samples=70, n_features=4, seed=9)
        for name in VARIANT_NAMES:
            engine = make_variant(name, _tiny_config(n_epochs=1), fpe=FPE)
            result = engine.fit(task)
            assert result.method == name
            assert result.best_score >= result.base_score

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            make_variant("E-AFE_X")

    def test_hash_variant_uses_right_method(self):
        engine = make_variant("E-AFE_I", _tiny_config())
        assert engine.fpe.method == "icws"

    def test_variant_d_has_no_fpe(self):
        engine = make_variant("E-AFE_D", _tiny_config())
        assert not hasattr(engine, "fpe")

    def test_variant_r_single_stage(self):
        engine = make_variant("E-AFE_R", _tiny_config(), fpe=FPE)
        assert engine.config.two_stage is False
        assert engine.config.per_step_rewards is False

    def test_shared_fpe_not_mutated(self):
        config = _tiny_config()
        make_variant("E-AFE", config, fpe=FPE)
        assert FPE.method == "ccws"
