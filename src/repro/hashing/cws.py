"""Consistent Weighted Sampling: ICWS, CCWS, PCWS and 0-bit (LICWS).

These are the weighted-MinHash families the paper ablates as
E-AFE_I / E-AFE (CCWS, the default) / E-AFE_P / E-AFE_L in Table III:

* **ICWS** — Ioffe, "Improved Consistent Sampling, Weighted Minhash and
  L1 Sketching", ICDM 2010.  The reference algorithm: per (slot, element)
  draw ``r, c ~ Gamma(2, 1)`` and ``beta ~ U(0, 1)``, then

      t      = floor(ln(w) / r + beta)
      ln(y)  = r * (t - beta)
      ln(a)  = ln(c) - ln(y) - r

  and keep the element minimizing ``a``.  Pr[slot collides] equals the
  generalized Jaccard similarity sum(min) / sum(max).

* **CCWS** — Wu et al., "Canonical Consistent Weighted Sampling for
  Real-Value Weighted Min-Hash", ICDM 2016.  Works on the raw weight
  instead of its logarithm (uniform discretization of the weight axis),
  trading a little bias for better numerical behaviour on small weights.

* **PCWS** — Wu et al., "Consistent Weighted Sampling Made More
  Practical", WWW 2017.  Replaces one Gamma variable of ICWS with a
  uniform, saving memory/time while keeping the ICWS estimator form.

* **LICWS (0-bit)** — Li, "0-bit Consistent Weighted Sampling", KDD
  2015.  Runs ICWS but keeps only the selected element id, dropping the
  discretized quantile ``t``: cheaper signatures whose element-collision
  rate still tracks generalized Jaccard.

All samplers expose the same interface: ``signature(weights)`` returns
``(elements, quantiles)`` and ``compress(weights)`` returns a
classifier-ready float vector of the selected elements' weights.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ICWS",
    "CCWS",
    "PCWS",
    "LICWS",
    "generalized_jaccard",
    "cws_collision_similarity",
    "make_sampler",
    "SAMPLER_NAMES",
]

_LOG_FLOOR = 1e-12  # weights below this are treated as absent


def generalized_jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Generalized Jaccard similarity of two non-negative vectors."""
    left = np.asarray(a, dtype=np.float64).reshape(-1)
    right = np.asarray(b, dtype=np.float64).reshape(-1)
    if left.shape != right.shape:
        raise ValueError("vectors must have identical length")
    if (left < 0).any() or (right < 0).any():
        raise ValueError("generalized Jaccard requires non-negative weights")
    denominator = float(np.maximum(left, right).sum())
    if denominator == 0.0:
        return 1.0
    return float(np.minimum(left, right).sum()) / denominator


def cws_collision_similarity(
    sig_a: tuple[np.ndarray, np.ndarray], sig_b: tuple[np.ndarray, np.ndarray]
) -> float:
    """CWS similarity estimate: fraction of (element, quantile) collisions."""
    elements_a, quantiles_a = sig_a
    elements_b, quantiles_b = sig_b
    if elements_a.shape != elements_b.shape:
        raise ValueError("signatures must have identical length")
    hits = (elements_a == elements_b) & (quantiles_a == quantiles_b)
    return float(np.mean(hits))


class _BaseCWS:
    """Shared RNG setup and the public signature/compress interface."""

    #: set by subclasses; used by make_sampler and reprs
    name = "cws"

    def __init__(self, d: int = 48, seed: int = 0) -> None:
        if d < 1:
            raise ValueError("signature dimension d must be positive")
        self.d = d
        self.seed = seed

    def _random_fields(
        self, n_elements: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per (slot, element) random variates, deterministic in the seed.

        Consistency across calls matters: the same (seed, d, n) must give
        the same fields, otherwise signatures of two columns from the
        same dataset would not be comparable.
        """
        rng = np.random.default_rng(self.seed)
        r = rng.gamma(2.0, 1.0, size=(self.d, n_elements))
        c = rng.gamma(2.0, 1.0, size=(self.d, n_elements))
        beta = rng.uniform(0.0, 1.0, size=(self.d, n_elements))
        return r, c, beta

    # -- subclass hook ---------------------------------------------------
    def _score(
        self, weights: np.ndarray, r: np.ndarray, c: np.ndarray, beta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ln_a, t)`` with shape (d, n); smaller ln_a wins."""
        raise NotImplementedError

    # -- public API --------------------------------------------------------
    def signature(self, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(elements, quantiles)`` — argmin element and its t per slot."""
        w = np.asarray(weights, dtype=np.float64).reshape(-1)
        w = np.nan_to_num(w, posinf=0.0, neginf=0.0)
        if (w < 0).any():
            raise ValueError("CWS requires non-negative weights")
        n = w.shape[0]
        if n == 0:
            raise ValueError("cannot hash an empty weight vector")
        active = w > _LOG_FLOOR
        if not active.any():
            # Degenerate all-zero column: a fixed, well-defined signature.
            return (np.zeros(self.d, dtype=np.int64),
                    np.zeros(self.d, dtype=np.int64))
        r, c, beta = self._random_fields(n)
        ln_a, t = self._score(np.maximum(w, _LOG_FLOOR), r, c, beta)
        ln_a = np.where(active[None, :], ln_a, np.inf)
        elements = np.argmin(ln_a, axis=1)
        quantiles = t[np.arange(self.d), elements].astype(np.int64)
        return elements.astype(np.int64), quantiles

    def compress(self, weights: np.ndarray) -> np.ndarray:
        """Classifier-ready float signature: selected elements' weights.

        This is the fixed-size "approximate hashing feature" H of the
        paper's Equation 4: ``d`` representative sample values chosen
        consistently, so similar columns produce similar vectors.
        """
        w = np.asarray(weights, dtype=np.float64).reshape(-1)
        w = np.nan_to_num(w, posinf=0.0, neginf=0.0)
        elements, _ = self.signature(w)
        return w[elements]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(d={self.d}, seed={self.seed})"


class ICWS(_BaseCWS):
    """Ioffe's improved consistent weighted sampling (reference method)."""

    name = "icws"

    def _score(self, weights, r, c, beta):
        ln_w = np.log(weights)[None, :]
        t = np.floor(ln_w / r + beta)
        ln_y = r * (t - beta)
        ln_a = np.log(c) - ln_y - r
        return ln_a, t


class PCWS(_BaseCWS):
    """Practical CWS: one uniform replaces a Gamma draw of ICWS."""

    name = "pcws"

    def _random_fields(self, n_elements):
        rng = np.random.default_rng(self.seed)
        r = rng.gamma(2.0, 1.0, size=(self.d, n_elements))
        # The second Gamma(2,1) of ICWS is replaced by -ln(u1 * u2) with
        # one uniform re-used, cutting one full random field.
        u = rng.uniform(_LOG_FLOOR, 1.0, size=(self.d, n_elements))
        beta = rng.uniform(0.0, 1.0, size=(self.d, n_elements))
        return r, u, beta

    def _score(self, weights, r, u, beta):
        ln_w = np.log(weights)[None, :]
        t = np.floor(ln_w / r + beta)
        ln_y = r * (t - beta)
        ln_a = np.log(-np.log(u)) - ln_y - r
        return ln_a, t


class CCWS(_BaseCWS):
    """Canonical CWS: uniform discretization of the raw weight axis."""

    name = "ccws"

    def _score(self, weights, r, c, beta):
        w = weights[None, :]
        t = np.floor(w / r + beta)
        y = r * (t - beta)
        # Canonical form scores on the weight axis directly.
        ln_a = np.log(c) - np.log(np.maximum(y + r, _LOG_FLOOR))
        return ln_a, t


class LICWS(_BaseCWS):
    """0-bit CWS (Li, KDD 2015): ICWS keeping only the element id."""

    name = "licws"

    def _score(self, weights, r, c, beta):
        ln_w = np.log(weights)[None, :]
        t = np.floor(ln_w / r + beta)
        ln_y = r * (t - beta)
        ln_a = np.log(c) - ln_y - r
        # 0-bit: the quantile is dropped from the signature.
        return ln_a, np.zeros_like(t)


SAMPLER_NAMES = ("icws", "ccws", "pcws", "licws")


def make_sampler(name: str, d: int = 48, seed: int = 0) -> _BaseCWS:
    """Factory over the CWS family by paper variant name."""
    samplers = {"icws": ICWS, "ccws": CCWS, "pcws": PCWS, "licws": LICWS}
    try:
        return samplers[name.lower()](d=d, seed=seed)
    except KeyError:
        raise ValueError(
            f"unknown sampler {name!r}; expected one of {SAMPLER_NAMES}"
        ) from None
