"""python -m repro.store maintenance CLI."""

import json

import pytest

from repro.store import RunStore, SqliteBackend
from repro.store.__main__ import main


@pytest.fixture
def populated(tmp_path):
    path = str(tmp_path / "store.db")
    backend = SqliteBackend(path)
    backend.put_many([("a", 1.0), ("b", 2.0)])
    store = RunStore(path)
    store.finish("ds", "NFS", 0, "hash", {"best_score": 0.9, "wall_time": 1.0})
    store.start("ds", "NFS", 1, "hash")
    return path


class TestStoreCLI:
    def test_stats(self, populated, capsys):
        assert main(["stats", populated]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["n_scores"] == 2
        assert stats["n_runs"] == 2
        assert stats["runs_by_status"] == {"completed": 1, "running": 1}

    def test_export_stdout(self, populated, capsys):
        assert main(["export", populated]) == 0
        document = json.loads(capsys.readouterr().out)
        assert {entry["key"] for entry in document["scores"]} == {"a", "b"}
        statuses = {run["status"] for run in document["runs"]}
        assert statuses == {"completed", "running"}

    def test_export_to_file(self, populated, tmp_path, capsys):
        out = str(tmp_path / "dump.json")
        assert main(["export", populated, "--out", out]) == 0
        with open(out, encoding="utf-8") as handle:
            document = json.load(handle)
        assert len(document["scores"]) == 2

    def test_vacuum(self, populated, capsys):
        assert main(["vacuum", populated]) == 0
        assert "vacuumed" in capsys.readouterr().out
        assert SqliteBackend(populated).integrity_ok()

    def test_stats_without_queue_keeps_historical_shape(
        self, populated, capsys
    ):
        assert main(["stats", populated]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert "queue" not in stats  # single-process stores stay clean

    def test_stats_reports_fleet_queue(self, populated, capsys):
        store = RunStore(populated)
        store.enqueue_cells(
            [("ds", "NFS", seed, "h", "{}") for seed in range(3)]
        )
        store.claim_cell("w0")
        assert main(["stats", populated]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["queue"] == {
            "pending": 2, "claimed": 1, "running": 0, "completed": 0,
            "dead": 0,
        }
        assert stats["queue_depth"] == 3
        assert stats["active_leases"]["count"] == 1
        ages = stats["active_leases"]["heartbeat_age_seconds"]
        assert ages["min"] >= 0

    def test_stats_watch_exits_once_queue_drains(self, populated, capsys):
        store = RunStore(populated)
        store.enqueue_cells([("ds", "NFS", 0, "h", "{}")])
        store.complete_cell(store.claim_cell("w0").token)
        assert main(["stats", populated, "--watch", "0.01"]) == 0
        assert json.loads(capsys.readouterr().out)  # printed at least once

    def test_vacuum_prunes_expired_lease_debris(self, populated, capsys):
        import time

        store = RunStore(populated)
        store.enqueue_cells([("ds", "NFS", 0, "h", "{}")])
        store.claim_cell("crashed-worker", lease_ttl=0.01)
        time.sleep(0.05)
        assert main(["vacuum", populated]) == 0
        out = capsys.readouterr().out
        assert "1 expired leases reaped" in out
        assert store.queue_counts() == {"pending": 1}

    def test_missing_file_rejected(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "absent.db")]) == 1

    def test_stats_never_creates_a_store(self, tmp_path, capsys):
        # Inspection must not materialize an empty database on a typo.
        path = tmp_path / "typo.db"
        assert main(["stats", str(path)]) == 1
        assert not path.exists()

    def test_unknown_command_rejected(self, populated):
        with pytest.raises(SystemExit):
            main(["defrag", populated])


@pytest.fixture
def plan_store(tmp_path):
    """A run store holding two seeds' plans of one (dataset, method)."""
    from repro.api import FeaturePlan

    path = str(tmp_path / "runs.db")
    store = RunStore(path)
    for seed, names in ((0, ["f0", "mul(f0,f1)"]), (1, ["f0", "log(f2)"])):
        plan = FeaturePlan(names, ["f0", "f1", "f2"])
        store.finish(
            "ds", "E-AFE", seed, "hash",
            {"best_score": 0.9, "feature_plan": plan.to_dict()},
        )
    return path


class TestPlansPublish:
    def test_publish_into_registry(self, plan_store, tmp_path, capsys):
        from repro.serve import PlanRegistry

        registry_path = str(tmp_path / "registry")
        assert main(["plans", plan_store, "--publish", registry_path]) == 0
        out = capsys.readouterr().out
        assert "ds/E-AFE@1" in out and "ds/E-AFE@2" in out
        registry = PlanRegistry(registry_path)
        assert registry.latest_version("ds/E-AFE") == 2

    def test_publish_respects_filters(self, plan_store, tmp_path):
        from repro.serve import PlanRegistry

        registry_path = str(tmp_path / "registry.db")
        assert main(
            ["plans", plan_store, "--seed", "0", "--publish", registry_path]
        ) == 0
        assert PlanRegistry(registry_path).latest_version("ds/E-AFE") == 1

    def test_publish_zero_matches_fails(self, plan_store, tmp_path, capsys):
        registry_path = str(tmp_path / "registry")
        assert main(
            ["plans", plan_store, "--dataset", "Typo", "--publish",
             registry_path]
        ) == 1
        assert "nothing published" in capsys.readouterr().err

    def test_publish_is_idempotent(self, plan_store, tmp_path):
        from repro.serve import PlanRegistry

        registry_path = str(tmp_path / "registry")
        assert main(["plans", plan_store, "--publish", registry_path]) == 0
        assert main(["plans", plan_store, "--publish", registry_path]) == 0
        assert len(PlanRegistry(registry_path)) == 2


class TestPlansDiff:
    def test_diff_two_seeds(self, plan_store, capsys):
        assert main(["plans", plan_store, "--diff"]) == 0
        out = capsys.readouterr().out
        assert "shared (1):" in out
        assert "mul(f0,f1)" in out
        assert "log(f2)" in out

    def test_diff_requires_exactly_two(self, plan_store, capsys):
        assert main(["plans", plan_store, "--seed", "0", "--diff"]) == 1
        assert "exactly two" in capsys.readouterr().err
