"""Public-API contract tests.

Guard rails for downstream users: every name promised by a package
``__all__`` must resolve, and every public symbol must carry a real
docstring.  A rename or a silently dropped export fails here before it
fails in someone's pipeline.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.frame",
    "repro.ml",
    "repro.hashing",
    "repro.operators",
    "repro.datasets",
    "repro.rl",
    "repro.core",
    "repro.baselines",
    "repro.bench",
    "repro.store",
    "repro.api",
    "repro.serve",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_package_has_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and package.__doc__.strip()

    def test_public_callables_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports without docstrings: {undocumented}"
        )


class TestPublicClassesDocumentMethods:
    @pytest.mark.parametrize(
        "cls_path",
        [
            "repro.frame.Frame",
            "repro.core.EAFE",
            "repro.core.FPEModel",
            "repro.core.FeatureTransformer",
            "repro.core.DownstreamEvaluator",
            "repro.hashing.SampleCompressor",
            "repro.rl.RecurrentPolicyAgent",
            "repro.rl.FeatureSpace",
            "repro.ml.RandomForestClassifier",
        ],
    )
    def test_public_methods_documented(self, cls_path):
        module_name, cls_name = cls_path.rsplit(".", 1)
        cls = getattr(importlib.import_module(module_name), cls_name)
        undocumented = []
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, f"{cls_path} methods lack docs: {undocumented}"


class TestVersion:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
