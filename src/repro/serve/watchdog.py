"""Serving self-test watchdog: canary transforms on a daemon thread.

A degraded registry is detected lazily (on the request that hits it);
a broken *compute* path — corrupted operator registry, a numpy that
stopped returning bit-stable results, a poisoned import — would
otherwise only surface as wrong answers.  The watchdog closes that
gap: every ``interval`` seconds it round-trips a small canary matrix
through a compiled :class:`~repro.api.plan.FeaturePlan` and compares
the output bit-for-bit against the baseline computed at construction
time.  Any mismatch or exception flips the app's readiness
(``/healthz`` reports ``degraded``) via
:meth:`ServeApp.record_selftest`; the next clean round-trip flips it
back.

The canary plan is built from the paper's default operator registry
and never touches the plan registry or the service caches, so the
self-test is independent of (and cannot mask) registry degradation.
"""

from __future__ import annotations

import threading

import numpy as np

from ..api.plan import FeaturePlan

__all__ = ["Watchdog", "CANARY_FEATURES", "CANARY_COLUMNS"]

#: Expressions covering an identity pass-through, a binary operator,
#: and a unary operator — enough to notice a broken compute path
#: without being expensive.
CANARY_FEATURES = ["f0", "mul(f0,f1)", "log(f1)"]
CANARY_COLUMNS = ["f0", "f1"]

_CANARY_MATRIX = np.array(
    [[1.0, 2.0], [3.0, 4.0], [0.5, 8.0]], dtype=np.float64
)


class Watchdog:
    """Periodic canary self-test feeding a :class:`ServeApp`.

    Parameters
    ----------
    app:
        Object exposing ``record_selftest(ok, error)`` — in practice
        the :class:`~repro.serve.server.ServeApp`.
    interval:
        Seconds between canary round-trips.

    Construction performs the first round-trip eagerly to capture the
    bit-exact baseline; a compute path broken at startup therefore
    raises immediately instead of silently serving wrong answers.
    """

    def __init__(self, app, interval: float = 5.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        self.app = app
        self.interval = float(interval)
        self.n_checks = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._plan = FeaturePlan(
            list(CANARY_FEATURES), list(CANARY_COLUMNS)
        )
        self._baseline = np.asarray(
            self._plan.transform(_CANARY_MATRIX), dtype=np.float64
        ).copy()

    # -- one round-trip ----------------------------------------------------
    def check(self) -> bool:
        """Run one canary round-trip and report the verdict to the app.

        Returns ``True`` when the transform reproduced the baseline
        bit-for-bit.
        """
        self.n_checks += 1
        try:
            output = np.asarray(
                self._plan.transform(_CANARY_MATRIX), dtype=np.float64
            )
        except Exception as error:  # noqa: BLE001 — verdict, not crash
            self.app.record_selftest(
                False, f"canary transform raised: {error!r}"
            )
            return False
        if output.shape != self._baseline.shape or not np.array_equal(
            output, self._baseline, equal_nan=True
        ):
            self.app.record_selftest(
                False,
                "canary transform diverged from its baseline "
                f"(shape {output.shape} vs {self._baseline.shape})",
            )
            return False
        self.app.record_selftest(True, None)
        return True

    # -- thread lifecycle --------------------------------------------------
    def start(self) -> threading.Thread:
        """Start the daemon loop; returns the thread."""
        if self._thread is not None and self._thread.is_alive():
            return self._thread
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="serve-watchdog", daemon=True
        )
        self._thread.start()
        return self._thread

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.check()
