"""Evaluation-service throughput: caching and backend dispatch.

The paper's efficiency argument is evaluations-per-second times
evaluations-avoided; these micro-benchmarks measure both levers of the
``repro.eval`` layer:

* ``test_eval_throughput`` — memoization on a repeated-candidate
  workload (the same sweep scored over several epochs, as engines do
  when candidates regenerate).
* ``test_backend_throughput`` — dispatch cost on a *cold-cache
  multi-sweep* workload (every candidate distinct, the base matrix
  absorbing an accepted feature every few sweeps, as a real stage-2
  run does): the per-batch ``process`` backend re-pays pool startup
  and base-matrix pickling every sweep, the persistent shared-memory
  ``pool`` backend pays them once, and the ``pool_speculative``
  variant additionally pipelines each sweep's generation work and
  submission behind the previous sweep's in-flight fits, exactly as
  the engine's cross-agent speculation does (committing when the base
  survives, discarding at acceptance boundaries — the waste is
  reported through the speculation counters).  Records
  scored-candidates/sec per backend in ``BENCH_eval.json``.
* the *fidelity ladder arm* inside ``test_backend_throughput`` — a
  cold-cache sweep stream scored twice on the pool backend: once at
  full CV and once through ``ladder+surrogate``.  The report carries
  ``fidelity_vs_full_speedup`` and the audited ``fidelity_regret``
  (mean |full-CV − reported| over the audit subsample), and the test
  asserts the accounting invariant ``n_cache_hits + n_cache_misses +
  n_surrogate_served == submissions`` on both arms.

Set ``REPRO_BENCH_OUT=<dir>`` to write the JSON artifacts.
"""

import json
import os
import time

import numpy as np

from repro.core.evaluation import DownstreamEvaluator
from repro.datasets import make_classification
from repro.eval import EvaluationCache, EvaluationService
from repro.fidelity import make_fidelity

N_CANDIDATES = 8
N_REPEATS = 4

#: Backend-comparison workload: many small sweeps of fresh candidates
#: (the realistic post-FPE-filter sweep size), the base matrix
#: absorbing one accepted feature every ``ACCEPT_EVERY`` sweeps.
N_SWEEPS = 24
SWEEP_CANDIDATES = 4
ACCEPT_EVERY = 8
#: Same explicit worker count for every parallel backend — the
#: comparison is purely per-batch startup vs persistent dispatch.
N_WORKERS = 4


def _workload():
    task = make_classification(n_samples=200, n_features=6, seed=0)
    base = task.X.to_array()
    rng = np.random.default_rng(0)
    columns = [
        base[:, i % base.shape[1]] * base[:, (i + 1) % base.shape[1]]
        + rng.normal()
        for i in range(N_CANDIDATES)
    ]
    return task, base, columns


def _evaluator():
    return DownstreamEvaluator(task="C", n_splits=3, n_estimators=5, seed=0)


def _measure(service, base, columns, y):
    started = time.perf_counter()
    scores = []
    for _ in range(N_REPEATS):
        scores.append(service.score_batch(base, columns, y))
    elapsed = time.perf_counter() - started
    submissions = N_CANDIDATES * N_REPEATS
    return {
        "elapsed_s": elapsed,
        "n_submissions": submissions,
        "n_real_fits": service.evaluator.n_evaluations,
        "cache_hit_rate": service.stats.hit_rate,
        "scored_per_sec": submissions / max(elapsed, 1e-9),
        "scores": scores,
    }


def eval_throughput() -> dict:
    task, base, columns = _workload()
    uncached = _measure(
        EvaluationService(_evaluator(), cache=None), base, columns, task.y
    )
    cached = _measure(
        EvaluationService(_evaluator(), cache=EvaluationCache()),
        base,
        columns,
        task.y,
    )
    report = {
        "workload": {
            "n_samples": task.n_samples,
            "n_base_features": base.shape[1],
            "n_candidates": N_CANDIDATES,
            "n_repeats": N_REPEATS,
        },
        "uncached": {k: v for k, v in uncached.items() if k != "scores"},
        "cached": {k: v for k, v in cached.items() if k != "scores"},
        "throughput_speedup": (
            cached["scored_per_sec"] / max(uncached["scored_per_sec"], 1e-9)
        ),
        "fits_avoided": uncached["n_real_fits"] - cached["n_real_fits"],
        "identical_scores": uncached["scores"] == cached["scores"],
    }
    return report


def _sweep_workload():
    """Cold-cache multi-sweep stream mimicking a stage-2 run.

    Every sweep scores ``SWEEP_CANDIDATES`` distinct candidates; every
    ``ACCEPT_EVERY``-th sweep "accepts" a feature, so the base-matrix
    token changes at realistic acceptance boundaries — often enough to
    exercise per-sweep serialization and speculation rollback, sparse
    enough that cross-sweep speculation usually commits (engines
    accept on a minority of sweeps).
    """
    task = make_classification(n_samples=60, n_features=5, seed=0)
    base = np.asarray(task.X.to_array(), dtype=np.float64)
    rng = np.random.default_rng(7)
    sweeps = []
    for sweep in range(N_SWEEPS):
        d = base.shape[1]
        columns = [
            base[:, i % d] * base[:, (i + 1) % d]
            + rng.normal(size=base.shape[0]) * 0.01
            for i in range(SWEEP_CANDIDATES)
        ]
        sweeps.append((base, columns))
        if (sweep + 1) % ACCEPT_EVERY == 0:
            base = np.column_stack([base, columns[0]])  # accept a feature
    return task, sweeps


def _generation_work(n_samples: int) -> float:
    """Deterministic stand-in for one sweep's generation + filtering.

    The engine does real work between scoring sweeps (operand
    sampling, operator application, FPE inference); the speculative
    pipeline's claim is that this work hides behind in-flight fits.
    """
    size = max(64, n_samples)
    matrix = np.linspace(0.0, 1.0, size * size).reshape(size, size)
    return float(np.linalg.norm(matrix @ matrix.T))


def _eval_service(backend: str) -> EvaluationService:
    # A cheap downstream family (Table V's NB column) keeps the fits
    # from drowning the quantity under test — dispatch overhead; the
    # bit-identity assertion below holds for every model family.
    return EvaluationService(
        DownstreamEvaluator(task="C", model_kind="nb_gp", n_splits=3, seed=0),
        cache=EvaluationCache(),
        backend=backend,
        n_workers=N_WORKERS,
    )


def _measure_backend(backend: str, task, sweeps) -> dict:
    service = _eval_service(backend)
    scores = []
    started = time.perf_counter()
    with service:
        for base, columns in sweeps:
            _generation_work(task.n_samples)  # sequential: gen, then score
            scores.append(
                list(service.iter_scores_async(base, columns, task.y))
            )
    elapsed = time.perf_counter() - started
    submissions = N_SWEEPS * SWEEP_CANDIDATES
    return {
        "elapsed_s": elapsed,
        "n_submissions": submissions,
        "n_real_fits": service.evaluator.n_evaluations,
        "n_backend_fallbacks": service.stats.n_backend_fallbacks,
        "scored_per_sec": submissions / max(elapsed, 1e-9),
        "scores": scores,
    }


def _measure_pool_speculative(task, sweeps) -> dict:
    """The engine's cross-sweep pipeline, distilled.

    Sweep ``i+1``'s generation work and submission happen while sweep
    ``i``'s fits are still in flight.  When the base matrix survives
    the sweep the speculation is committed and consumed directly; at
    acceptance boundaries it is discarded (undispatched tasks are
    retracted for free) and the sweep is regenerated against the new
    base — the same commit/rollback contract ``AFEEngine._stage2``
    follows.
    """
    service = _eval_service("pool")
    y = task.y
    scores = []
    started = time.perf_counter()
    with service:
        spec_futures = None
        spec_base = None
        for index, (base, columns) in enumerate(sweeps):
            if spec_futures is not None and spec_base is base:
                futures = spec_futures
                service.commit_speculative(futures)
            else:
                if spec_futures is not None:
                    service.discard_speculative(spec_futures)
                _generation_work(task.n_samples)  # regenerate after rollback
                futures = service.submit_batch(base, columns, y)
            spec_futures = None
            spec_base = None
            if index + 1 < len(sweeps):
                # Speculate against the *current* base — whether it
                # survives the in-flight sweep is exactly what the
                # engine cannot know yet.  At acceptance boundaries the
                # guess is wrong and the batch is discarded above.
                next_columns = sweeps[index + 1][1]
                _generation_work(task.n_samples)  # behind in-flight fits
                spec_futures = service.submit_batch(
                    base, next_columns, y, speculative=True
                )
                spec_base = base
            scores.append([future.result() for future in futures])
        if spec_futures is not None:  # pragma: no cover - loop invariant
            service.discard_speculative(spec_futures)
    elapsed = time.perf_counter() - started
    submissions = N_SWEEPS * SWEEP_CANDIDATES
    stats = service.stats
    return {
        "elapsed_s": elapsed,
        "n_submissions": submissions,
        "n_real_fits": service.evaluator.n_evaluations,
        "n_backend_fallbacks": stats.n_backend_fallbacks,
        "n_speculative_submitted": stats.n_speculative_submitted,
        "n_speculative_used": stats.n_speculative_used,
        "n_speculative_discarded": stats.n_speculative_discarded,
        "n_drained_evictions": stats.n_drained_evictions,
        "pool_workers": stats.pool_workers,
        "peak_inflight": stats.peak_inflight,
        "pool_occupancy": stats.pool_occupancy,
        "scored_per_sec": submissions / max(elapsed, 1e-9),
        "scores": scores,
    }


#: Fidelity-arm workload: larger rows and a costlier downstream family
#: than the dispatch benchmark — here the fits must dominate, because
#: avoided fit work is exactly what the ladder sells.
N_FIDELITY_SWEEPS = 8
FIDELITY_FAMILIES = 4
FIDELITY_VARIANTS = 4  # candidates per sweep = families * variants
FIDELITY_SPEC = (
    "ladder+surrogate:folds=1,rows=0.25,promote=0.25,"
    "min_obs=3,bound=0.02,audit=6"
)
#: The audited mean |full-CV − reported| must stay below this.  The
#: workload is fully seeded, so the regret is deterministic (~0.03 on
#: the reference stream); the bound leaves sklearn-version headroom.
FIDELITY_REGRET_BOUND = 0.10


def _fidelity_workload():
    """Cold-cache sweeps of near-duplicate candidate families.

    Every candidate is digest-distinct (cold cache, every lookup
    misses) but each family's variants differ only by ``1e-8`` jitter —
    inside quantile-sketch rounding (6 decimals), so a family shares
    one surrogate bucket across sweeps.  Promoted full-CV scores fill
    the bucket; later variants get served without a fit.
    """
    task = make_classification(n_samples=240, n_features=6, seed=0)
    base = np.asarray(task.X.to_array(), dtype=np.float64)
    d = base.shape[1]
    families = [
        base[:, i % d] * base[:, (i + 1) % d]
        for i in range(FIDELITY_FAMILIES)
    ]
    rng = np.random.default_rng(11)
    sweeps = [
        [
            family + rng.normal(size=family.shape) * 1e-8
            for family in families
            for _ in range(FIDELITY_VARIANTS)
        ]
        for _ in range(N_FIDELITY_SWEEPS)
    ]
    return task, base, sweeps


def _measure_fidelity_arm(spec, task, base, sweeps) -> dict:
    service = EvaluationService(
        DownstreamEvaluator(task="C", n_splits=3, n_estimators=5, seed=0),
        cache=EvaluationCache(),
        backend="pool",
        n_workers=N_WORKERS,
        fidelity=make_fidelity(spec) if spec else None,
    )
    scores = []
    started = time.perf_counter()
    with service:
        for columns in sweeps:
            scores.append(service.score_batch(base, columns, task.y))
    elapsed = time.perf_counter() - started
    stats = service.stats
    submissions = N_FIDELITY_SWEEPS * FIDELITY_FAMILIES * FIDELITY_VARIANTS
    return {
        "elapsed_s": elapsed,
        "n_submissions": submissions,
        "n_real_fits": service.evaluator.n_evaluations,
        "n_cache_hits": stats.n_hits,
        "n_cache_misses": stats.n_misses,
        "n_lowfi_scored": stats.n_lowfi_scored,
        "n_promoted": stats.n_promoted,
        "n_surrogate_served": stats.n_surrogate_served,
        "n_surrogate_fallbacks": stats.n_surrogate_fallbacks,
        "n_audited": stats.n_audited,
        "fidelity_regret": stats.fidelity_regret,
        "scored_per_sec": submissions / max(elapsed, 1e-9),
        "scores": scores,
    }


def fidelity_throughput() -> dict:
    task, base, sweeps = _fidelity_workload()
    full = _measure_fidelity_arm(None, task, base, sweeps)
    laddered = _measure_fidelity_arm(FIDELITY_SPEC, task, base, sweeps)
    return {
        "workload": {
            "n_samples": task.n_samples,
            "n_base_features": base.shape[1],
            "n_sweeps": N_FIDELITY_SWEEPS,
            "candidates_per_sweep": FIDELITY_FAMILIES * FIDELITY_VARIANTS,
            "n_workers": N_WORKERS,
        },
        "spec": FIDELITY_SPEC,
        "full_cv": {k: v for k, v in full.items() if k != "scores"},
        "fidelity": {k: v for k, v in laddered.items() if k != "scores"},
        "fidelity_vs_full_speedup": (
            laddered["scored_per_sec"] / max(full["scored_per_sec"], 1e-9)
        ),
        "fidelity_regret": laddered["fidelity_regret"],
    }


def backend_throughput() -> dict:
    task, sweeps = _sweep_workload()
    measured = {
        backend: _measure_backend(backend, task, sweeps)
        for backend in ("serial", "process", "pool")
    }
    measured["pool_speculative"] = _measure_pool_speculative(task, sweeps)
    report = {
        "workload": {
            "n_samples": task.n_samples,
            "n_base_features": sweeps[0][0].shape[1],
            "n_sweeps": N_SWEEPS,
            "candidates_per_sweep": SWEEP_CANDIDATES,
            "accept_every": ACCEPT_EVERY,
            "n_workers": N_WORKERS,
        },
        "backends": {
            name: {k: v for k, v in result.items() if k != "scores"}
            for name, result in measured.items()
        },
        "pool_vs_process_speedup": (
            measured["pool"]["scored_per_sec"]
            / max(measured["process"]["scored_per_sec"], 1e-9)
        ),
        "pool_speculative_vs_process_speedup": (
            measured["pool_speculative"]["scored_per_sec"]
            / max(measured["process"]["scored_per_sec"], 1e-9)
        ),
        "pool_speculative_vs_pool_speedup": (
            measured["pool_speculative"]["scored_per_sec"]
            / max(measured["pool"]["scored_per_sec"], 1e-9)
        ),
        "identical_scores": (
            measured["serial"]["scores"]
            == measured["process"]["scores"]
            == measured["pool"]["scores"]
            == measured["pool_speculative"]["scores"]
        ),
    }
    fidelity = fidelity_throughput()
    report["fidelity_ladder"] = fidelity
    report["fidelity_vs_full_speedup"] = fidelity["fidelity_vs_full_speedup"]
    report["fidelity_regret"] = fidelity["fidelity_regret"]
    return report


#: Throughput-ratio gates: (report key, bar).  Checked together by the
#: retry-once guard and asserted by the test.
_RATIO_GATES = (
    ("pool_vs_process_speedup", 2.0),
    ("pool_speculative_vs_process_speedup", 4.0),
    ("fidelity_vs_full_speedup", 1.5),
)


def _gates_pass(report: dict) -> bool:
    return all(report[key] >= bar for key, bar in _RATIO_GATES)


def _best_of_two_backend_throughput() -> dict:
    """Best-of-two to keep the speedup gates robust on noisy CI runners."""
    report = backend_throughput()
    if not _gates_pass(report):
        retry = backend_throughput()
        if _gates_pass(retry) or (
            min(retry[key] / bar for key, bar in _RATIO_GATES)
            > min(report[key] / bar for key, bar in _RATIO_GATES)
        ):
            report = retry
    return report


def test_backend_throughput(benchmark):
    report = benchmark.pedantic(
        _best_of_two_backend_throughput, rounds=1, iterations=1
    )
    print("\nBENCH_eval: " + json.dumps(report, indent=2))
    out_dir = os.environ.get("REPRO_BENCH_OUT")
    if out_dir:
        path = os.path.join(out_dir, "BENCH_eval.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    # Backends must agree bit-for-bit on a cold cache...
    assert report["identical_scores"]
    for name, result in report["backends"].items():
        if name == "pool_speculative":
            continue  # discarded speculation legitimately re-fits
        assert result["n_real_fits"] == N_SWEEPS * SWEEP_CANDIDATES, name
        assert result["n_backend_fallbacks"] == 0, name
    # The speculative run reports its waste through the counters: every
    # speculated candidate is accounted used or discarded, and the only
    # extra fits are the discarded ones.
    spec = report["backends"]["pool_speculative"]
    assert spec["n_backend_fallbacks"] == 0
    assert spec["n_speculative_submitted"] == (
        spec["n_speculative_used"] + spec["n_speculative_discarded"]
    )
    assert spec["n_speculative_used"] > 0
    assert spec["n_real_fits"] >= N_SWEEPS * SWEEP_CANDIDATES
    assert spec["n_real_fits"] <= (
        N_SWEEPS * SWEEP_CANDIDATES + spec["n_speculative_discarded"]
    )
    # The fidelity arms obey the satellite-2 accounting invariant:
    # hits, misses, and surrogate serves partition submissions exactly
    # — a served candidate never doubles as a cache miss.
    ladder = report["fidelity_ladder"]
    for arm in (ladder["full_cv"], ladder["fidelity"]):
        assert (
            arm["n_cache_hits"]
            + arm["n_cache_misses"]
            + arm["n_surrogate_served"]
            == arm["n_submissions"]
        ), arm
    assert ladder["full_cv"]["n_surrogate_served"] == 0
    # The ladder genuinely engaged: rung-0 screening, promotion, and
    # surrogate serving all fired, and real fit work went down.
    assert ladder["fidelity"]["n_lowfi_scored"] > 0
    assert ladder["fidelity"]["n_promoted"] > 0
    assert ladder["fidelity"]["n_surrogate_served"] > 0
    assert ladder["fidelity"]["n_real_fits"] < ladder["full_cv"]["n_real_fits"]
    # Accuracy side of the trade: audited regret stays under the bound.
    assert ladder["fidelity"]["n_audited"] > 0
    assert report["fidelity_regret"] <= FIDELITY_REGRET_BOUND, (
        report["fidelity_regret"]
    )
    # ... and the persistent pool must beat the per-batch pool by the
    # issue's bar — startup and base-matrix pickling paid once, not per
    # sweep — while the ladder must beat full CV on the same pool by
    # 1.5x with regret bounded above.
    for key, bar in _RATIO_GATES:
        assert report[key] >= bar, (key, report[key])


def test_eval_throughput(benchmark):
    report = benchmark.pedantic(eval_throughput, rounds=1, iterations=1)
    print("\nBENCH_eval_throughput: " + json.dumps(report, indent=2))
    out_dir = os.environ.get("REPRO_BENCH_OUT")
    if out_dir:
        path = os.path.join(out_dir, "BENCH_eval_throughput.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    # The uncached path pays a real fit for every submission ...
    assert report["uncached"]["n_real_fits"] == N_CANDIDATES * N_REPEATS
    assert report["uncached"]["cache_hit_rate"] == 0.0
    # ... while the cached path pays once per distinct candidate and
    # returns bit-identical scores for the rest.
    assert report["cached"]["n_real_fits"] == N_CANDIDATES
    assert report["cached"]["cache_hit_rate"] == (N_REPEATS - 1) / N_REPEATS
    assert report["identical_scores"]
    assert report["throughput_speedup"] > 1.5
    assert report["fits_avoided"] == N_CANDIDATES * (N_REPEATS - 1)


def test_chaos_hooks_zero_cost_when_disabled(benchmark):
    """The fault-injection hooks must be free when no plan is installed.

    Every hot path above (store puts, pool fits, queue claims) now
    carries a ``maybe_fault`` call.  The throughput gates in
    ``test_backend_throughput`` already run with chaos *imported* —
    the pool arm clearing its speedup bars is the end-to-end proof —
    but this pins the micro-cost too: the disabled fast path is one
    module attribute load plus an ``is None`` test, bounded here at
    well under a microsecond per call.
    """
    from repro import chaos
    from repro.chaos import maybe_fault

    assert not chaos.active(), (
        "REPRO_FAULTS is set — benchmarks must run without a fault plan"
    )

    n = 200_000

    def hammer():
        for _ in range(n):
            maybe_fault("store.put")

    seconds = benchmark.pedantic(
        lambda: (time.perf_counter(), hammer(), time.perf_counter()),
        rounds=1, iterations=1,
    )
    per_call = (seconds[2] - seconds[0]) / n
    report = {
        "calls": n,
        "seconds_per_call": per_call,
        "chaos_active": False,
    }
    print("\nBENCH_chaos_overhead: " + json.dumps(report, indent=2))
    out_dir = os.environ.get("REPRO_BENCH_OUT")
    if out_dir:
        path = os.path.join(out_dir, "BENCH_chaos_overhead.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    # Generous bound: even a busy CI runner executes a disabled hook in
    # well under a microsecond; a lock, dict lookup, or env read on
    # this path would blow straight through it.
    assert per_call < 1e-6, f"{per_call * 1e9:.0f}ns per disabled hook"
    # And the hook really is inert: no faults fired, no counters moved.
    assert chaos.fault_counts() == {}
