"""Candidate evaluation subsystem: cached, batched, pipelined scoring.

Every downstream evaluation in the library flows through this layer.
:class:`EvaluationService` memoizes scores by candidate fingerprint,
reuses CV fold plans, and batches sweeps through three bit-identical
backends: ``serial`` (lazy, in-process), ``process`` (a fresh pool
per batch), and ``pool`` (a persistent shared-memory
:class:`PoolExecutor` whose workers receive base matrices via
``multiprocessing.shared_memory`` and pipeline fits behind
:meth:`EvaluationService.iter_scores_async`).
:class:`FeatureMatrixArena` turns per-candidate matrix construction
into an O(n) buffer write.  The un-cached primitive
(:class:`repro.core.evaluation.DownstreamEvaluator`) stays the unit of
accounting: its counters always mean *real* downstream fits, and
``EvalStats.n_backend_fallbacks`` records every time a parallel
backend degraded to serial scoring.

Score stores are pluggable: ``EvaluationCache`` is now an alias for
:class:`repro.store.MemoryBackend`, and :func:`repro.store.
make_eval_backend` composes it with a durable SQLite layer when a
store path is configured (``EngineConfig.eval_store_path`` /
``REPRO_EVAL_STORE``).
"""

from .arena import FeatureMatrixArena
from .executor import (
    PoolExecutor,
    TaskFailed,
    TaskLost,
    validate_eval_workers,
)
from .fingerprint import ColumnFingerprinter, content_digest
from .folds import FoldCache, subsample_fold_plan
from .metrics import aggregate_eval_stats, eval_metrics_text
from .service import (
    BACKENDS,
    EvalStats,
    EvaluationCache,
    EvaluationService,
    ScoreFuture,
)

__all__ = [
    "BACKENDS",
    "ColumnFingerprinter",
    "EvalStats",
    "EvaluationCache",
    "EvaluationService",
    "FeatureMatrixArena",
    "FoldCache",
    "PoolExecutor",
    "ScoreFuture",
    "TaskFailed",
    "TaskLost",
    "aggregate_eval_stats",
    "content_digest",
    "eval_metrics_text",
    "subsample_fold_plan",
    "validate_eval_workers",
]
