"""Shared fixtures for the paper-experiment benchmarks.

The FPE model is expensive to pre-train relative to a quick bench run,
and the paper itself reuses one pre-trained model across all target
datasets, so a session-scoped fixture mirrors that design.
"""

import pytest

from repro.core import pretrain_fpe


@pytest.fixture(scope="session")
def fpe_model():
    """One FPE model shared by every benchmark (paper Section III-D)."""
    return pretrain_fpe(n_train=6, n_validation=2, scale=0.25, seed=0)
