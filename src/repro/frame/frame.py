"""A minimal column-labelled tabular data structure.

The paper's pipeline manipulates tabular datasets (named feature columns
plus a label vector).  pandas is not available in this environment, so
:class:`Frame` provides the small slice of DataFrame behaviour the rest of
the library needs: named float64 columns over a dense numpy matrix,
column selection / assignment / removal, row slicing, and concatenation.

Design notes
------------
* Data is stored column-major as a ``dict[str, np.ndarray]`` so column
  appends (the hot operation during feature generation) are O(1) and do
  not copy the whole table.
* All columns are coerced to ``float64``.  Feature engineering operators
  are numeric; categorical inputs are expected to be label-encoded by
  :mod:`repro.ml.preprocessing` before entering a Frame.
* Frames are mostly treated as immutable by the engines: mutating helpers
  return new Frames unless the method name says ``inplace``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["Frame"]


class Frame:
    """A column-labelled two-dimensional table of float64 values.

    Parameters
    ----------
    data:
        Mapping of column name to 1-D array-like, or a 2-D array combined
        with ``columns``.
    columns:
        Column names when ``data`` is a 2-D array.  Ignored when ``data``
        is a mapping.

    Examples
    --------
    >>> f = Frame({"a": [1, 2], "b": [3, 4]})
    >>> f.shape
    (2, 2)
    >>> f["a"].tolist()
    [1.0, 2.0]
    """

    def __init__(
        self,
        data: Mapping[str, Iterable[float]] | np.ndarray | None = None,
        columns: Sequence[str] | None = None,
    ) -> None:
        self._data: dict[str, np.ndarray] = {}
        self._length = 0
        if data is None:
            return
        if isinstance(data, Mapping):
            for name, values in data.items():
                self[str(name)] = values
        else:
            matrix = np.asarray(data, dtype=np.float64)
            if matrix.ndim == 1:
                matrix = matrix.reshape(-1, 1)
            if matrix.ndim != 2:
                raise ValueError(f"expected 2-D data, got ndim={matrix.ndim}")
            if columns is None:
                columns = [f"f{i}" for i in range(matrix.shape[1])]
            if len(columns) != matrix.shape[1]:
                raise ValueError(
                    f"{len(columns)} column names for {matrix.shape[1]} columns"
                )
            for j, name in enumerate(columns):
                self[str(name)] = matrix[:, j]

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._data.keys())

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_columns)``."""
        return (self._length, len(self._data))

    @property
    def n_rows(self) -> int:
        return self._length

    @property
    def n_columns(self) -> int:
        return len(self._data)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: object) -> bool:
        return name in self._data

    def __iter__(self):
        return iter(self._data)

    def __getitem__(self, key: str | Sequence[str]) -> np.ndarray | "Frame":
        """Column access: a name returns the array, a list returns a Frame."""
        if isinstance(key, str):
            try:
                return self._data[key]
            except KeyError:
                raise KeyError(f"no column named {key!r}") from None
        return self.select(key)

    def __setitem__(self, name: str, values: Iterable[float]) -> None:
        column = np.asarray(values, dtype=np.float64).reshape(-1)
        if self._data and column.shape[0] != self._length:
            raise ValueError(
                f"column {name!r} has length {column.shape[0]}, "
                f"frame has {self._length} rows"
            )
        if not self._data:
            self._length = column.shape[0]
        self._data[name] = column

    def __delitem__(self, name: str) -> None:
        if name not in self._data:
            raise KeyError(f"no column named {name!r}")
        del self._data[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self.columns != other.columns or self._length != other._length:
            return False
        return all(
            np.array_equal(self._data[c], other._data[c], equal_nan=True)
            for c in self.columns
        )

    def __repr__(self) -> str:
        return f"Frame(rows={self._length}, columns={self.columns})"

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_array(self) -> np.ndarray:
        """Return a dense ``(n_rows, n_columns)`` float64 matrix copy."""
        if not self._data:
            return np.empty((self._length, 0), dtype=np.float64)
        return np.column_stack([self._data[c] for c in self.columns])

    # Alias mirroring the pandas attribute the paper's code would use.
    @property
    def values(self) -> np.ndarray:
        return self.to_array()

    def to_dict(self) -> dict[str, np.ndarray]:
        """Return a shallow copy of the column mapping."""
        return dict(self._data)

    def copy(self) -> "Frame":
        """Deep copy (column arrays are copied)."""
        out = Frame()
        for name in self.columns:
            out[name] = self._data[name].copy()
        return out

    # ------------------------------------------------------------------
    # Column operations
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Frame":
        """Return a new Frame with only ``names``, in the given order."""
        out = Frame()
        for name in names:
            if name not in self._data:
                raise KeyError(f"no column named {name!r}")
            out[name] = self._data[name]
        if not names:
            out._length = self._length
        return out

    def drop(self, names: str | Sequence[str]) -> "Frame":
        """Return a new Frame without ``names``."""
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._data]
        if missing:
            raise KeyError(f"no column(s) named {missing!r}")
        keep = [c for c in self.columns if c not in set(names)]
        out = self.select(keep)
        out._length = self._length
        return out

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        """Return a new Frame with columns renamed via ``mapping``."""
        out = Frame()
        for name in self.columns:
            out[mapping.get(name, name)] = self._data[name]
        return out

    def assign(self, **named_columns: Iterable[float]) -> "Frame":
        """Return a new Frame with the given columns added/replaced."""
        out = self.copy()
        for name, values in named_columns.items():
            out[name] = values
        return out

    def with_column(self, name: str, values: Iterable[float]) -> "Frame":
        """Return a new Frame with one column added/replaced.

        Unlike :meth:`assign` the name may be any string (e.g. generated
        operator expressions like ``"mul(f1,f2)"``).
        """
        out = self.copy()
        out[name] = values
        return out

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------
    def take(self, indices: Sequence[int] | np.ndarray) -> "Frame":
        """Return a new Frame with rows selected by integer ``indices``."""
        idx = np.asarray(indices)
        out = Frame()
        for name in self.columns:
            out[name] = self._data[name][idx]
        if not self.columns:
            out._length = len(idx)
        return out

    def head(self, n: int = 5) -> "Frame":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def sample(
        self, n: int, rng: np.random.Generator, replace: bool = False
    ) -> "Frame":
        """Random row sample using the caller-supplied generator."""
        if not replace and n > self._length:
            raise ValueError(f"cannot sample {n} rows from {self._length}")
        idx = rng.choice(self._length, size=n, replace=replace)
        return self.take(idx)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    @staticmethod
    def concat_columns(frames: Sequence["Frame"]) -> "Frame":
        """Horizontally concatenate Frames; duplicate names are suffixed."""
        out = Frame()
        seen: dict[str, int] = {}
        for frame in frames:
            for name in frame.columns:
                unique = name
                if unique in seen:
                    seen[name] += 1
                    unique = f"{name}__{seen[name]}"
                else:
                    seen[name] = 0
                out[unique] = frame._data[name]
        return out

    @staticmethod
    def concat_rows(frames: Sequence["Frame"]) -> "Frame":
        """Vertically concatenate Frames with identical columns."""
        if not frames:
            return Frame()
        columns = frames[0].columns
        for frame in frames[1:]:
            if frame.columns != columns:
                raise ValueError("row concat requires identical columns")
        out = Frame()
        for name in columns:
            out[name] = np.concatenate([f._data[name] for f in frames])
        return out

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, dict[str, float]]:
        """Per-column mean/std/min/max, NaN-aware."""
        summary: dict[str, dict[str, float]] = {}
        for name in self.columns:
            column = self._data[name]
            finite = column[np.isfinite(column)]
            if finite.size == 0:
                summary[name] = {
                    "mean": float("nan"),
                    "std": float("nan"),
                    "min": float("nan"),
                    "max": float("nan"),
                }
                continue
            summary[name] = {
                "mean": float(np.mean(finite)),
                "std": float(np.std(finite)),
                "min": float(np.min(finite)),
                "max": float(np.max(finite)),
            }
        return summary

    def isfinite(self) -> bool:
        """True when every value in the frame is finite."""
        return all(bool(np.isfinite(self._data[c]).all()) for c in self.columns)
