"""FE|DL and DL|FE hybrid baselines (Table III).

* **FE|DL** — "put the features selected by feature engineering into
  the deep learning process": run a lightweight AFE pass to build an
  engineered feature set, then score it with the tabular ResNet on a
  held-out split.
* **DL|FE** — "put the original features into deep learning training,
  then put the output features into the feature engineering method for
  feature selection": train the ResNet on raw features, take its
  penultimate representation as candidate features, greedily select
  the ones that help a Random Forest, and report that forest's score.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from ..core.engine import AFEResult, EngineConfig, EpochRecord
from ..core.evaluation import DownstreamEvaluator
from ..datasets.generators import TabularTask
from ..ml.metrics import f1_score, one_minus_rae
from ..ml.model_selection import train_test_split
from ..ml.resnet import TabularResNet
from .nfs import NFS

__all__ = ["FeThenDl", "DlThenFe"]


class FeThenDl:
    """FE|DL: engineer features first, learn a deep model on them."""

    method_name = "FE|DL"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = copy.deepcopy(config) if config is not None else EngineConfig()

    def fit(self, task: TabularTask) -> AFEResult:
        started = time.perf_counter()
        # Stage A: quick NFS pass produces the engineered feature set.
        fe_config = copy.deepcopy(self.config)
        fe_config.n_epochs = max(1, self.config.n_epochs // 2)
        fe_engine = NFS(fe_config)
        fe_result = fe_engine.fit(task)
        working = fe_engine._select_agent_features(task)
        # Rebuild the selected columns: original working features plus
        # whatever the FE pass reports as its best selection.
        from ..rl.environment import FeatureSpace

        space = FeatureSpace(
            working, max_order=fe_config.max_order, seed=fe_config.seed
        )
        name_to_column = {}
        for group in space.subgroups:
            for feature in group.members:
                name_to_column[feature.name] = feature.values
        columns = [
            name_to_column.get(name)
            for name in fe_result.selected_features
            if name in name_to_column
        ]
        if not columns:
            columns = [working.X[name] for name in working.X.columns]
        matrix = np.column_stack(columns)
        # Stage B: deep model on the engineered features, fixed split.
        metric = f1_score if task.task == "C" else one_minus_rae
        try:
            X_train, X_test, y_train, y_test = train_test_split(
                matrix, task.y, test_size=0.25, seed=self.config.seed,
                stratify=task.task == "C",
            )
            model = TabularResNet(
                task=task.task, width=32, n_blocks=2,
                n_epochs=max(10, self.config.n_epochs * 2),
                seed=self.config.seed,
            ).fit(X_train, y_train)
            score = max(float(metric(y_test, model.predict(X_test))), 0.0)
        except (ValueError, FloatingPointError):
            score = 0.0
        elapsed = time.perf_counter() - started
        return AFEResult(
            dataset=task.name,
            method=self.method_name,
            task=task.task,
            base_score=score,
            best_score=score,
            selected_features=fe_result.selected_features,
            history=[EpochRecord(0, elapsed, fe_result.n_downstream_evaluations + 1, score)],
            n_downstream_evaluations=fe_result.n_downstream_evaluations + 1,
            n_cache_hits=fe_result.n_cache_hits,
            n_cache_misses=fe_result.n_cache_misses,
            wall_time=elapsed,
        )


class DlThenFe:
    """DL|FE: deep representation first, then feature selection."""

    method_name = "DL|FE"
    #: Selected "features" are learned ResNet representation columns
    #: (``repr_*``), not operator expressions — no portable
    #: :class:`~repro.api.FeaturePlan` can re-compute them on new data.
    portable_plan = False

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = copy.deepcopy(config) if config is not None else EngineConfig()

    def fit(self, task: TabularTask) -> AFEResult:
        from ..eval import EvaluationService
        from ..store import make_eval_backend

        started = time.perf_counter()
        evaluator = DownstreamEvaluator(
            task=task.task,
            n_splits=self.config.n_splits,
            n_estimators=self.config.n_estimators,
            seed=self.config.seed,
        )
        service = EvaluationService.from_config(
            evaluator, self.config, make_eval_backend(self.config.eval_store_path)
        )
        try:
            body = TabularResNet(
                task=task.task, width=16, n_blocks=2,
                n_epochs=max(10, self.config.n_epochs * 2),
                seed=self.config.seed,
            ).fit(task.X.to_array(), task.y)
            representation = body.transform(task.X.to_array())
        except (ValueError, FloatingPointError):
            representation = task.X.to_array()
        # Greedy forward selection of representation columns by RF CV.
        selected: list[int] = []
        best_score = 0.0
        order = np.argsort(-representation.std(axis=0))
        budget = min(8, representation.shape[1])
        for j in order[:budget]:
            candidate = selected + [int(j)]
            score = service.evaluate(representation[:, candidate], task.y)
            if score > best_score:
                best_score = score
                selected = candidate
        elapsed = time.perf_counter() - started
        service.close()  # releases a pool backend's workers, if any
        result = AFEResult(
            dataset=task.name,
            method=self.method_name,
            task=task.task,
            base_score=best_score,
            best_score=max(best_score, 0.0),
            selected_features=[f"repr_{j}" for j in selected],
            history=[
                EpochRecord(0, elapsed, evaluator.n_evaluations, best_score)
            ],
            n_downstream_evaluations=evaluator.n_evaluations,
            n_cache_hits=service.n_cache_hits,
            n_cache_misses=service.n_cache_misses,
            n_backend_fallbacks=service.stats.n_backend_fallbacks,
            wall_time=elapsed,
        )
        result.absorb_fidelity_stats(service.stats)
        return result
