"""JSON row-payload normalization, shared by every serving entry point.

``TransformService.transform_rows``, ``FeaturePipeline.predict_rows``,
and the HTTP endpoints all accept the same request shapes; this module
is the single definition of those shapes, so error messages and edge
cases (empty payloads, missing columns) cannot drift between
endpoints:

* one row as a ``{column: value}`` mapping;
* one row as a flat value list (positional against ``input_columns``);
* a batch of rows of either shape.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

__all__ = ["rows_to_matrix"]


def rows_to_matrix(input_columns: list[str], rows) -> np.ndarray:
    """Normalize a JSON-shaped row payload to a float64 matrix.

    Mapping rows must carry every column in ``input_columns`` (extra
    keys are ignored); positional rows are taken as-is.  Empty
    payloads are rejected — an accidental ``[]`` is a client bug, not
    a zero-row transform.
    """

    def of_mapping(row: Mapping) -> list[float]:
        missing = [name for name in input_columns if name not in row]
        if missing:
            raise KeyError(f"row is missing input columns {missing!r}")
        return [float(row[name]) for name in input_columns]

    if isinstance(rows, Mapping):
        return np.array([of_mapping(rows)], dtype=np.float64)
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to transform")
    first = rows[0]
    if isinstance(first, Mapping):
        return np.array([of_mapping(row) for row in rows], dtype=np.float64)
    if isinstance(first, (int, float)) and not isinstance(first, bool):
        return np.array([rows], dtype=np.float64)
    return np.asarray(rows, dtype=np.float64)
