"""SampleCompressor: the FPE model's sample-size reducer (Equation 2).

Projects a feature column with *arbitrary* sample count M onto a fixed
``d``-dimensional vector by consistent weighted sampling, so that

    | sim(D1, D2) - sim(compress(D1), compress(D2)) | < eps

holds approximately (Eq. 2): two columns similar under generalized
Jaccard stay similar after compression.  The compressor normalizes each
column to non-negative [0, 1] weights first (CWS requires non-negative
weights; min-max scaling also makes signatures comparable across
features of wildly different magnitude).
"""

from __future__ import annotations

import numpy as np

from ..ml.base import sanitize_matrix
from .cws import _BaseCWS, make_sampler
from .minhash import MinHasher

__all__ = ["SampleCompressor"]


class SampleCompressor:
    """Compress feature columns of any length into d-dim signatures.

    Parameters
    ----------
    method:
        ``"ccws"`` (paper default), ``"icws"``, ``"pcws"``, ``"licws"``,
        ``"minhash"`` (classic unweighted sketch), or one of the
        related-work backends used by the Q6 ablation: ``"fhash"``
        (feature hashing), ``"quantile"`` (LFE-style quantile sketch),
        ``"meta"`` (statistical meta-features).
    d:
        Output dimension (the paper's default signature size is 48).
    seed:
        Drives every random field; identical seeds give identical
        signatures, which is what makes signatures comparable across the
        pre-training corpus and the target dataset.
    """

    METHODS = ("ccws", "icws", "pcws", "licws", "minhash", "fhash", "quantile", "meta")

    def __init__(self, method: str = "ccws", d: int = 48, seed: int = 0) -> None:
        from .feature_hashing import FeatureHasher
        from .meta_features import MetaFeatureExtractor
        from .quantile_sketch import QuantileSketch

        self.method = method.lower()
        self.d = d
        self.seed = seed
        if self.method == "minhash":
            self._hasher = MinHasher(d=d, seed=seed)
        elif self.method == "fhash":
            self._hasher = FeatureHasher(d=d, seed=seed)
        elif self.method == "quantile":
            self._hasher = QuantileSketch(d=d, seed=seed)
        elif self.method == "meta":
            self._hasher = MetaFeatureExtractor(d=d, seed=seed)
        else:
            self._hasher = make_sampler(self.method, d=d, seed=seed)

    @staticmethod
    def normalize_column(column: np.ndarray) -> np.ndarray:
        """Min-max scale a column to [0, 1] after sanitizing non-finites."""
        values = sanitize_matrix(
            np.asarray(column, dtype=np.float64).reshape(-1, 1)
        )[:, 0]
        low, high = values.min(), values.max()
        if high == low:
            return np.zeros_like(values)
        return (values - low) / (high - low)

    def compress_column(self, column: np.ndarray) -> np.ndarray:
        """Fixed-size signature of one feature column."""
        column = np.asarray(column, dtype=np.float64).reshape(-1)
        if column.size == 0:
            raise ValueError("cannot compress an empty column")
        weights = self.normalize_column(column)
        return self._hasher.compress(weights)

    def compress_matrix(self, X: np.ndarray) -> np.ndarray:
        """Compress every column: ``(M, N)`` input -> ``(N, d)`` output.

        Each *feature* becomes one row of the result — the orientation
        the FPE classifier consumes (features are its instances).
        """
        matrix = np.asarray(X, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D matrix")
        return np.vstack(
            [self.compress_column(matrix[:, j]) for j in range(matrix.shape[1])]
        )

    def similarity(self, column_a: np.ndarray, column_b: np.ndarray) -> float:
        """Signature-space similarity estimate between two columns.

        For CWS methods this is the element-collision rate; for classic
        MinHash the slot-collision rate (both unbiased Jaccard
        estimators).  The vector backends (fhash/quantile/meta) use
        cosine similarity of their signatures, mapped to [0, 1].
        """
        a = self.normalize_column(np.asarray(column_a, dtype=np.float64).reshape(-1))
        b = self.normalize_column(np.asarray(column_b, dtype=np.float64).reshape(-1))
        if isinstance(self._hasher, MinHasher):
            return float(
                np.mean(self._hasher.signature(a) == self._hasher.signature(b))
            )
        if isinstance(self._hasher, _BaseCWS):
            elements_a, _ = self._hasher.signature(a)
            elements_b, _ = self._hasher.signature(b)
            return float(np.mean(elements_a == elements_b))
        sig_a = self._hasher.compress(a)
        sig_b = self._hasher.compress(b)
        norm = np.linalg.norm(sig_a) * np.linalg.norm(sig_b)
        if norm == 0.0:
            return 1.0 if np.allclose(sig_a, sig_b) else 0.0
        return float((1.0 + sig_a @ sig_b / norm) / 2.0)

    def __repr__(self) -> str:
        return (
            f"SampleCompressor(method={self.method!r}, d={self.d}, "
            f"seed={self.seed})"
        )
