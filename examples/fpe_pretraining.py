"""Pre-training and tuning the FPE model (Algorithm 1 end to end).

Run:
    python examples/fpe_pretraining.py

Shows the part of the system the other examples treat as a black box:
1. leave-one-feature-out labelling of corpus features (Eq. 3);
2. the recall-maximizing grid search over hash families and signature
   dimensions (Eq. 6);
3. reuse of the tuned model: filtering candidate features on a dataset
   the model has never seen.
"""

import numpy as np

from repro.core import make_evaluator_factory, tune_fpe
from repro.core.fpe import label_features
from repro.datasets import load, public_corpus


def main() -> None:
    factory = make_evaluator_factory(n_splits=3, n_estimators=5, seed=0)

    print("1) LOFO labelling on one corpus dataset (Eq. 3):")
    sample_task = next(iter(public_corpus(limit=1, scale=0.3)))
    for row in label_features(sample_task, factory(sample_task)):
        verdict = "effective" if row.label else "not effective"
        print(f"   {row.feature:<6} gain={row.gain:+.4f} -> {verdict}")

    print("\n2) Grid search over (hash family, signature dim) (Eq. 6):")
    train = list(public_corpus(task="C", limit=3, scale=0.3))
    train += list(public_corpus(task="R", limit=2, scale=0.3))
    validation = list(public_corpus(task="C", limit=5, scale=0.3))[3:]
    model, report = tune_fpe(
        train,
        validation,
        factory,
        methods=("ccws", "icws", "licws"),
        dimensions=(16, 48),
        seed=0,
    )
    for trial in report["trials"]:
        print(
            f"   {trial['method']:<6} d={trial['d']:<3} "
            f"precision={trial['precision']:.2f} recall={trial['recall']:.2f}"
        )
    best = report["best"]
    print(
        f"   selected: {best['method']} with d={best['d']} "
        f"(recall={best['recall']:.2f})"
    )

    print("\n3) Filtering unseen candidate features with the tuned model:")
    target = load("diabetes", max_samples=200, max_features=6)
    rng = np.random.default_rng(0)
    candidates = {
        "raw column f0": np.asarray(target.X["f0"]),
        "smooth composite": np.asarray(target.X["f0"]) * np.asarray(target.X["f1"]),
        "pure noise": rng.normal(size=target.n_samples),
        "spiky garbage": np.where(
            rng.random(target.n_samples) < 0.03, 1e9, 0.0
        ),
    }
    for label, column in candidates.items():
        probability = model.predict_proba(column)
        verdict = "KEEP" if probability >= 0.5 else "DROP"
        print(f"   {label:<18} p(effective)={probability:.2f} -> {verdict}")


if __name__ == "__main__":
    main()
