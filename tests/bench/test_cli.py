"""Unit tests for the python -m repro.bench CLI."""

import pytest

from repro.bench.__main__ import _EXPERIMENTS, main


class TestCLI:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(_EXPERIMENTS)

    def test_every_paper_artifact_is_covered(self):
        # One CLI entry per evaluation-section table and figure, plus
        # the Q6 signature ablation.
        assert set(_EXPERIMENTS) == {
            "table1", "table3", "table4", "table5", "table6",
            "figure1", "figure6", "figure7", "figure8", "figure9",
            "ablation_q6", "related_work",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_figure6_runs_end_to_end(self, capsys):
        # figure6 is the cheapest experiment with no FPE dependency.
        assert main(["figure6"]) == 0
        out = capsys.readouterr().out
        assert "thre" in out

    def test_table1_with_dataset_override(self, capsys):
        assert main(["table1", "--datasets", "labor"]) == 0
        out = capsys.readouterr().out
        assert "labor" in out

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["table1", "--resume"])

    def test_store_and_resume_end_to_end(self, tmp_path, monkeypatch, capsys):
        # Cold run populates the store; warm --resume run replays it
        # (identical rendered table, one completed run-store cell).
        from repro.store import RunStore

        import os

        path = str(tmp_path / "cli-store.db")
        monkeypatch.delenv("REPRO_RUN_STORE", raising=False)
        monkeypatch.delenv("REPRO_RUN_RESUME", raising=False)
        monkeypatch.delenv("REPRO_EVAL_STORE", raising=False)
        arguments = [
            "table1", "--datasets", "labor", "--store", path, "--resume",
        ]
        assert main(list(arguments)) == 0
        cold = capsys.readouterr().out
        assert main(list(arguments)) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert RunStore(path).counts() == {"completed": 1}
        # main() rolls back every env var it set: a later in-process
        # invocation must not inherit this store.
        for variable in (
            "REPRO_RUN_STORE", "REPRO_RUN_RESUME", "REPRO_EVAL_STORE",
        ):
            assert variable not in os.environ


class TestWorkerMode:
    def test_worker_requires_store(self):
        with pytest.raises(SystemExit):
            main(["table1", "--worker"])

    def test_worker_drains_enqueued_cells(self, tmp_path, capsys):
        from repro.bench.harness import bench_config
        from repro.fleet.spec import CellSpec
        from repro.datasets import make_classification
        from repro.store import RunStore, config_hash

        path = str(tmp_path / "fleet.db")
        store = RunStore(path)
        task = make_classification(
            name="cli-cell", n_samples=60, n_features=3, seed=0
        )
        config = bench_config(seed=0)
        cell_hash = f"{config_hash(config)}|fpe:none"
        spec = CellSpec.build(task, "NFS", config, None, cell_hash)
        store.enqueue_cells([(task.name, "NFS", 0, cell_hash, spec.to_json())])
        assert main(
            ["table1", "--store", path, "--worker", "--worker-id", "cli-w0"]
        ) == 0
        err = capsys.readouterr().err
        assert "claimed=1 completed=1" in err
        assert store.queue_counts() == {"completed": 1}
        assert store.completed_payload(task.name, "NFS", 0, cell_hash)

    def test_worker_on_empty_queue_exits_cleanly(self, tmp_path, capsys):
        path = str(tmp_path / "empty.db")
        from repro.store import RunStore

        RunStore(path)  # materialize the schema
        assert main(["table1", "--store", path, "--worker"]) == 0
        assert "claimed=0" in capsys.readouterr().err
