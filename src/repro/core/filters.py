"""Candidate-feature filters: who decides what reaches the downstream task.

The engine is agnostic about the discriminator in Figure 3.  Three
strategies cover the paper's methods and ablations:

* :class:`FPEFilter` — the contribution: pre-trained FPE probability.
* :class:`RandomFilter` — the E-AFE_D ablation: drop at random with the
  same expected rate, no learned knowledge.
* :class:`KeepAllFilter` — NFS-style: every generated feature is
  formally evaluated.
"""

from __future__ import annotations

import numpy as np

from .fpe import FPEModel

__all__ = ["CandidateFilter", "FPEFilter", "RandomFilter", "KeepAllFilter"]


class CandidateFilter:
    """Interface: probability that a candidate feature is worth evaluating."""

    def proba(self, column: np.ndarray) -> float:
        raise NotImplementedError

    def keep(self, column: np.ndarray) -> bool:
        return self.proba(column) >= 0.5

    def proba_batch(self, columns: list[np.ndarray]) -> np.ndarray:
        """Per-column keep probabilities for a whole sweep.

        The default delegates to :meth:`proba` column by column, in
        order — so stateful filters (e.g. :class:`RandomFilter`'s RNG)
        behave identically whether the caller batches or loops.
        Vectorizable filters override this.
        """
        return np.array([self.proba(column) for column in columns], dtype=float)

    def keep_batch(self, columns: list[np.ndarray]) -> np.ndarray:
        """Boolean keep decisions for a whole sweep (see proba_batch)."""
        if not columns:
            return np.zeros(0, dtype=bool)
        return self.proba_batch(columns) >= 0.5

    def state_snapshot(self) -> object | None:
        """Mutable filter state, for speculative filtering + rollback.

        Stateless filters (FPE, keep-all) return ``None``; stateful
        ones (:class:`RandomFilter`'s RNG) return whatever
        :meth:`state_restore` needs to replay their decisions exactly.
        """
        return None

    def state_restore(self, state: object | None) -> None:
        """Rewind to a :meth:`state_snapshot` (no-op when stateless)."""


class FPEFilter(CandidateFilter):
    """Filter by the pre-trained feature-validness classifier."""

    def __init__(self, model: FPEModel) -> None:
        if not model.is_fitted:
            raise ValueError("FPE model must be fitted before filtering")
        self.model = model

    def proba(self, column: np.ndarray) -> float:
        return self.model.predict_proba(column)

    def proba_batch(self, columns: list[np.ndarray]) -> np.ndarray:
        """One vectorized classifier call over the stacked signatures.

        The classifier inference runs once per sweep instead of once
        per candidate.  Per-row probabilities agree with :meth:`proba`
        to within one floating-point ULP (BLAS may reorder the dot-
        product reduction for batched operands); keep *decisions* are
        the quantity consumers rely on.
        """
        if not columns:
            return np.zeros(0, dtype=float)
        signatures = self.model.signatures(columns)
        return np.asarray(
            self.model.predict_proba_signature(signatures), dtype=float
        )


class RandomFilter(CandidateFilter):
    """E-AFE_D: coin-flip dropout at a fixed keep rate."""

    def __init__(self, keep_rate: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= keep_rate <= 1.0:
            raise ValueError("keep_rate must be in [0, 1]")
        self.keep_rate = keep_rate
        self._rng = np.random.default_rng(seed)

    def proba(self, column: np.ndarray) -> float:
        # A fresh draw per candidate: 1.0 keeps, 0.0 drops.
        return 1.0 if self._rng.random() < self.keep_rate else 0.0

    def state_snapshot(self) -> object:
        return self._rng.bit_generator.state

    def state_restore(self, state: object | None) -> None:
        if state is not None:
            self._rng.bit_generator.state = state


class KeepAllFilter(CandidateFilter):
    """No pre-selection: the traditional AFE pipeline."""

    def proba(self, column: np.ndarray) -> float:
        return 1.0
