"""Unit tests for the bench harness: factories, profiles, tables."""

import numpy as np
import pytest

from repro.baselines import NFS, AutoFSR, RTDLNBaseline
from repro.bench import (
    ALL_METHODS,
    bench_config,
    bench_dataset,
    bench_profile,
    format_table,
    make_method,
    run_methods,
)
from repro.core import EngineConfig, FPEModel, make_evaluator_factory
from repro.datasets import make_classification


def _tiny_fpe():
    corpus = [make_classification(n_samples=50, n_features=4, seed=s) for s in range(2)]
    model = FPEModel(d=8, seed=0)
    model.fit(corpus, make_evaluator_factory(), generated_per_dataset=2)
    return model


FPE = _tiny_fpe()


class TestProfiles:
    def test_default_profile_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert bench_profile() == "quick"

    def test_paper_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert bench_profile() == "paper"
        config = bench_config()
        assert config.n_epochs == 200

    def test_invalid_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "mega")
        with pytest.raises(ValueError):
            bench_profile()

    def test_quick_config_overridable(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        config = bench_config(n_epochs=7)
        assert config.n_epochs == 7

    def test_quick_dataset_capped(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        task = bench_dataset("Higgs Boson")
        assert task.n_samples <= 250
        assert task.n_features <= 8


class TestMakeMethod:
    def test_all_table3_methods_construct(self):
        config = EngineConfig(n_epochs=1, seed=0)
        for name in ALL_METHODS:
            engine = make_method(name, config, fpe=FPE)
            assert engine.method_name == name

    def test_specific_types(self):
        config = EngineConfig(n_epochs=1)
        assert isinstance(make_method("NFS", config), NFS)
        assert isinstance(make_method("AutoFSR", config), AutoFSR)
        assert isinstance(make_method("RTDLN", config), RTDLNBaseline)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            make_method("AutoML-Zero", EngineConfig())

    def test_config_not_shared_between_methods(self):
        config = EngineConfig(n_epochs=5)
        engine = make_method("NFS", config)
        engine.config.n_epochs = 1
        assert config.n_epochs == 5


class TestRunMethods:
    def test_runs_requested_methods(self):
        task = make_classification(n_samples=60, n_features=4, seed=0)
        config = EngineConfig(
            n_epochs=1, stage1_epochs=1, transforms_per_agent=2,
            n_splits=3, n_estimators=3, seed=0,
        )
        results = run_methods(task, ("NFS", "E-AFE"), config, fpe=FPE)
        assert set(results) == {"NFS", "E-AFE"}
        assert results["NFS"].method == "NFS"


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "value"], [["a", 0.123456], ["bbbb", 2.0]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.123" in text
        assert lines[0].startswith("name")

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_custom_float_format(self):
        text = format_table(["p"], [[0.000012]], float_format="{:.1e}")
        assert "1.2e-05" in text
