"""Random Forest (the paper's downstream evaluation task).

Following the NFS convention the paper adopts (Section II, Evaluation
Task), Random Forest cross-validation is the formal feature evaluator.
The forest is standard Breiman bagging: each tree sees a bootstrap sample
of the rows and a random ``sqrt`` subset of features per node.

``feature_importances_`` (mean impurity-style usage counts weighted by
node size) backs the paper's pre-filtering step: *"E-AFE first conducts
feature selection of less than maximum features according to the feature
importance via RF on the 36 raw target datasets"* (Section IV-B).
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_matrix, check_X_y
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _BaseForest(BaseEstimator):
    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: int | None = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self._trees: list = []
        self.n_features_: int | None = None

    def _make_tree(self, seed: int):
        raise NotImplementedError

    def _fit_trees(self, X: np.ndarray, y: np.ndarray) -> None:
        self._trees = []
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        n_samples = X.shape[0]
        for i in range(self.n_estimators):
            tree = self._make_tree(int(rng.integers(0, 2**31 - 1)))
            if self.bootstrap:
                rows = rng.integers(0, n_samples, size=n_samples)
            else:
                rows = np.arange(n_samples)
            tree.fit(X[rows], y[rows])
            self._trees.append(tree)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalized count of how often each feature splits a node.

        A usage-frequency importance: cheap, monotone in how much the
        forest relies on a feature, and sufficient for the paper's
        "keep the top-k features by RF importance" pre-filter.
        """
        if self.n_features_ is None:
            raise RuntimeError("forest is not fitted")
        counts = np.zeros(self.n_features_)
        for tree in self._trees:
            for feature in tree._feature:
                if feature >= 0:
                    counts[feature] += 1.0
        total = counts.sum()
        if total == 0.0:
            return np.full(self.n_features_, 1.0 / self.n_features_)
        return counts / total


class RandomForestClassifier(_BaseForest):
    """Bagged CART classifiers with soft-vote aggregation."""

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            seed=seed,
        )

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit bootstrap-sampled CART trees on (X, y)."""
        matrix, target = check_X_y(X, y)
        self.classes_ = np.unique(target)
        self._fit_trees(matrix, target)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Mean class-probability vote across trees, (n, n_classes)."""
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        matrix = check_matrix(X, allow_nonfinite=True)
        # Trees may have seen different class subsets in their bootstrap;
        # align every tree's probabilities onto the forest's class axis.
        total = np.zeros((matrix.shape[0], len(self.classes_)))
        for tree in self._trees:
            probabilities = tree.predict_proba(matrix)
            columns = np.searchsorted(self.classes_, tree.classes_)
            total[:, columns] += probabilities
        return total / len(self._trees)

    def predict(self, X) -> np.ndarray:
        """Class with the highest mean probability vote."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


class RandomForestRegressor(_BaseForest):
    """Bagged CART regressors with mean aggregation."""

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            seed=seed,
        )

    def fit(self, X, y) -> "RandomForestRegressor":
        matrix, target = check_X_y(X, y)
        self._fit_trees(matrix, target)
        return self

    def predict(self, X) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        matrix = check_matrix(X, allow_nonfinite=True)
        predictions = np.zeros(matrix.shape[0])
        for tree in self._trees:
            predictions += tree.predict(matrix)
        return predictions / len(self._trees)
