"""Unified retry/backoff policy shared by every failure domain.

One :class:`RetryPolicy` vocabulary covers SQLite busy/locked
contention (store + run queue), fleet claim/heartbeat traffic, and
pool-task resubmission.  Backoff is exponential with *deterministic*
seeded jitter: the k-th retry of a given policy instance always sleeps
the same amount for the same seed, so retry schedules — like the chaos
faults that trigger them — replay bit-identically.

A policy also carries a *retry budget*: a cap on total sleep seconds
across the instance's lifetime.  Once the budget is exhausted the
policy stops absorbing failures and lets them propagate, which keeps a
persistently broken dependency from turning into an unbounded stall.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
import weakref
from dataclasses import dataclass, field

from ..chaos import FaultInjected

__all__ = [
    "RetryPolicy",
    "is_transient_sqlite_error",
    "sqlite_retry_policy",
]

# Message fragments that mark a sqlite3.OperationalError as contention
# (another writer holds the lock) rather than corruption or misuse.
_TRANSIENT_SQLITE_MARKERS = ("locked", "busy")


def is_transient_sqlite_error(error: BaseException) -> bool:
    """True for busy/locked contention errors worth retrying.

    ``database is locked`` / ``database table is locked`` / ``database
    is busy`` are WAL-contention outcomes that a short backoff resolves;
    everything else (``no such table``, ``disk I/O error``, misuse) is
    fatal and must propagate.  Injected chaos faults count as transient
    so fault plans exercise the retry path.
    """
    if isinstance(error, FaultInjected):
        return True
    if not isinstance(error, sqlite3.OperationalError):
        return False
    message = str(error).lower()
    return any(marker in message for marker in _TRANSIENT_SQLITE_MARKERS)


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a sleep budget.

    ``classify(error) -> bool`` decides retryability; the default
    retries transient SQLite contention and injected chaos faults.
    ``budget`` bounds *total* sleep seconds over the policy's lifetime
    (shared across calls); ``None`` means unbounded.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5  # +- fraction of the backoff step
    seed: int = 0
    budget: float | None = 30.0
    classify: object = None  # callable(BaseException) -> bool
    sleep: object = time.sleep  # injectable for tests
    name: str = "retry"

    # -- runtime counters (exported via repro_reliability_*) --------------
    n_retries: int = field(default=0, init=False)
    n_giveups: int = field(default=0, init=False)
    slept_seconds: float = field(default=0.0, init=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.classify is None:
            self.classify = is_transient_sqlite_error
        self._rng = random.Random(f"retry:{self.name}:{self.seed}")
        self._lock = threading.Lock()
        _POLICIES.add(self)

    # -- backoff schedule --------------------------------------------------
    def delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based), jitter included.

        Consumes the policy's RNG — successive calls with the same
        ``attempt`` differ by jitter, but the full sequence is a pure
        function of the seed.
        """
        backoff = min(
            self.base_delay * self.multiplier**attempt, self.max_delay
        )
        with self._lock:
            spread = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return backoff * spread

    def budget_remaining(self) -> float:
        """Sleep seconds left before the policy stops retrying."""
        if self.budget is None:
            return float("inf")
        return max(0.0, self.budget - self.slept_seconds)

    def record_retry(self) -> None:
        """Count a retry executed outside :meth:`call`.

        Some retries are not a simple re-invocation (a pool-task
        resubmission produces a *new* sequence number); owners drive
        those themselves and record them here so the attempt still
        lands in ``repro_reliability_retries_total``.
        """
        with self._lock:
            self.n_retries += 1

    # -- execution ---------------------------------------------------------
    def call(self, fn, *args, **kwargs):
        """Run ``fn`` retrying retryable failures per the policy."""
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if (
                    attempt + 1 >= self.max_attempts
                    or not self.classify(error)
                ):
                    raise
                pause = self.delay(attempt)
                if pause > self.budget_remaining():
                    with self._lock:
                        self.n_giveups += 1
                    raise
                with self._lock:
                    self.n_retries += 1
                    self.slept_seconds += pause
                if pause > 0:
                    self.sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover

    def __hash__(self):  # dataclass with mutable fields; identity hash
        return id(self)

    def __eq__(self, other):
        return self is other


# Live policies, tracked weakly so metrics can aggregate without
# keeping dead policies (or their owners) alive.
_POLICIES: "weakref.WeakSet[RetryPolicy]" = weakref.WeakSet()


def registered_policies() -> list[RetryPolicy]:
    """Snapshot of live retry policies (for metrics aggregation)."""
    return list(_POLICIES)


def sqlite_retry_policy(
    name: str = "sqlite", seed: int = 0, **overrides
) -> RetryPolicy:
    """Policy tuned for WAL busy/locked contention around transactions."""
    defaults = dict(
        max_attempts=5,
        base_delay=0.02,
        multiplier=2.0,
        max_delay=0.5,
        jitter=0.5,
        budget=30.0,
    )
    defaults.update(overrides)
    return RetryPolicy(name=name, seed=seed, **defaults)
