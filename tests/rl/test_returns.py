"""Unit + property tests for return computations (Eqs. 9-10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl import (
    accumulated_returns,
    discounted_returns,
    forward_lambda_returns,
    lambda_return,
    score_gains,
)

rewards_strategy = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False),
    min_size=1,
    max_size=30,
)


class TestScoreGains:
    def test_diff(self):
        np.testing.assert_allclose(score_gains([0.5, 0.6, 0.55]), [0.1, -0.05])

    def test_needs_two_scores(self):
        with pytest.raises(ValueError):
            score_gains([0.5])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            score_gains([0.5, np.nan])


class TestAccumulatedReturns:
    def test_gamma_zero_is_identity(self):
        np.testing.assert_allclose(
            accumulated_returns([1.0, 2.0, 3.0], gamma=0.0), [1.0, 2.0, 3.0]
        )

    def test_gamma_one_is_cumsum(self):
        np.testing.assert_allclose(
            accumulated_returns([1.0, 2.0, 3.0], gamma=1.0), [1.0, 3.0, 6.0]
        )

    def test_literal_equation_nine(self):
        # U_t = sum_{k<=t} gamma^(t-k) r_k, checked by hand for t=2.
        gamma = 0.5
        rewards = [1.0, 2.0, 4.0]
        returns = accumulated_returns(rewards, gamma)
        expected_u2 = gamma**2 * 1.0 + gamma**1 * 2.0 + gamma**0 * 4.0
        assert returns[2] == pytest.approx(expected_u2)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            accumulated_returns([1.0], gamma=1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accumulated_returns([], gamma=0.9)

    @given(rewards_strategy, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_recursion_invariant(self, rewards, gamma):
        returns = accumulated_returns(rewards, gamma)
        for t in range(1, len(rewards)):
            assert returns[t] == pytest.approx(
                gamma * returns[t - 1] + rewards[t], abs=1e-9
            )


class TestDiscountedReturns:
    def test_terminal_step_equals_last_reward(self):
        returns = discounted_returns([1.0, 2.0, 5.0], gamma=0.9)
        assert returns[-1] == 5.0

    def test_bellman_recursion(self):
        returns = discounted_returns([1.0, 2.0, 5.0], gamma=0.9)
        assert returns[0] == pytest.approx(1.0 + 0.9 * returns[1])

    @given(rewards_strategy, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_recursion_invariant(self, rewards, gamma):
        returns = discounted_returns(rewards, gamma)
        for t in range(len(rewards) - 1):
            assert returns[t] == pytest.approx(
                rewards[t] + gamma * returns[t + 1], abs=1e-9
            )

    @given(rewards_strategy)
    @settings(max_examples=30, deadline=None)
    def test_positive_rewards_give_positive_returns(self, rewards):
        positive = [abs(r) + 0.1 for r in rewards]
        assert (discounted_returns(positive, 0.9) > 0).all()


class TestForwardLambdaReturns:
    def test_lambda_one_is_discounted_return(self):
        rewards = [1.0, -0.5, 2.0]
        np.testing.assert_allclose(
            forward_lambda_returns(rewards, gamma=0.9, lam=1.0),
            discounted_returns(rewards, gamma=0.9),
        )

    def test_lambda_zero_is_immediate_reward(self):
        rewards = [1.0, -0.5, 2.0]
        np.testing.assert_allclose(
            forward_lambda_returns(rewards, gamma=0.9, lam=0.0), rewards
        )

    def test_terminal_step_is_last_reward(self):
        out = forward_lambda_returns([1.0, 2.0, 3.0], gamma=0.9, lam=0.5)
        assert out[-1] == 3.0

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            forward_lambda_returns([1.0], gamma=0.9, lam=1.5)

    @given(
        rewards_strategy,
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_recursion_invariant(self, rewards, gamma, lam):
        out = forward_lambda_returns(rewards, gamma, lam)
        for t in range(len(rewards) - 1):
            assert out[t] == pytest.approx(
                rewards[t] + gamma * lam * out[t + 1], abs=1e-9
            )

    @given(rewards_strategy, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_bounded_between_lam_extremes_for_positive(self, rewards, lam):
        positive = [abs(r) for r in rewards]
        low = forward_lambda_returns(positive, 0.9, 0.0)
        high = forward_lambda_returns(positive, 0.9, 1.0)
        mid = forward_lambda_returns(positive, 0.9, lam)
        assert ((low - 1e-9 <= mid) & (mid <= high + 1e-9)).all()


class TestLambdaReturn:
    def test_lambda_zero_is_first_return(self):
        rewards = [1.0, 2.0, 3.0]
        first = accumulated_returns(rewards, 0.9)[0]
        assert lambda_return(rewards, gamma=0.9, lam=0.0) == pytest.approx(first)

    def test_single_reward(self):
        assert lambda_return([2.0], gamma=0.9, lam=0.5) == pytest.approx(
            (1 - 0.5) * 2.0
        )

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            lambda_return([1.0], gamma=0.9, lam=1.0)

    @given(
        rewards_strategy,
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_finite(self, rewards, gamma, lam):
        assert np.isfinite(lambda_return(rewards, gamma, lam))

    @given(rewards_strategy, st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_extreme_k_step_returns(self, rewards, lam):
        # U^lambda is a sub-convex combination of the U_k, so it can
        # never exceed the largest accumulated return in magnitude.
        returns = accumulated_returns(rewards, 0.9)
        value = lambda_return(rewards, gamma=0.9, lam=lam)
        bound = max(abs(returns.min()), abs(returns.max()))
        assert abs(value) <= bound + 1e-9
