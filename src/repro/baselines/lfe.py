"""LFE baseline (Nargesian et al., IJCAI 2017) — learned transformation choice.

Related-work method (paper §V-A, reference [4]): *Learning Feature
Engineering* trains, offline, one classifier per transformation that
predicts from a feature's fixed-size representation whether applying
the transformation will improve the downstream model.  Online, LFE
applies only the transformations its predictors recommend — no RL, no
per-candidate evaluation, which makes it extremely cheap but bounded
by the predictors' quality.

Representation: the quantile data sketch LFE used (§V-B), backed by
:class:`repro.hashing.QuantileSketch`.  Predictors: one small MLP per
unary operator (the original work's design; binary operators are
skipped, as in the original, which only handled unary transforms).
"""

from __future__ import annotations

import copy
import time

import numpy as np

from ..core.engine import AFEResult, EngineConfig, EpochRecord
from ..core.evaluation import DownstreamEvaluator
from ..datasets.generators import TabularTask
from ..eval import EvaluationService
from ..store import make_eval_backend
from ..hashing.quantile_sketch import QuantileSketch
from ..ml.base import sanitize_matrix
from ..ml.mlp import MLPClassifier
from ..operators.registry import OperatorRegistry, default_registry

__all__ = ["LFE"]


class LFE:
    """Per-transformation usefulness predictors over quantile sketches."""

    method_name = "LFE"

    def __init__(
        self,
        config: EngineConfig | None = None,
        sketch_dim: int = 32,
    ) -> None:
        self.config = copy.deepcopy(config) if config is not None else EngineConfig()
        self.sketch = QuantileSketch(d=sketch_dim)
        self.registry: OperatorRegistry = default_registry()
        self._predictors: dict[str, MLPClassifier] = {}
        self.eval_cache = make_eval_backend(self.config.eval_store_path)

    def _make_service(self, evaluator: DownstreamEvaluator) -> EvaluationService:
        return EvaluationService.from_config(evaluator, self.config, self.eval_cache)

    # -- offline phase -----------------------------------------------------
    def pretrain(self, corpus: list[TabularTask]) -> "LFE":
        """Learn one usefulness predictor per unary transformation.

        For every corpus feature and unary operator: apply the operator,
        compare downstream scores with/without the transformed column,
        and label the (sketch, operator) pair by whether it helped.
        """
        examples: dict[str, tuple[list[np.ndarray], list[int]]] = {
            self.registry.by_index(i).name: ([], [])
            for i in self.registry.unary_indices
        }
        for task in corpus:
            evaluator = DownstreamEvaluator(
                task=task.task,
                n_splits=self.config.n_splits,
                n_estimators=self.config.n_estimators,
                seed=self.config.seed,
            )
            service = self._make_service(evaluator)
            matrix = task.X.to_array()
            base = service.evaluate(matrix, task.y)
            base_token = service.token(matrix)
            for name in task.X.columns:
                column = np.asarray(task.X[name])
                sketch = self.sketch.compress(column)
                for index in self.registry.unary_indices:
                    operator = self.registry.by_index(index)
                    transformed = operator.apply(column)
                    if np.ptp(transformed) < 1e-12:
                        continue
                    score = service.score_batch(
                        matrix, [transformed], task.y, base_token=base_token
                    )[0]
                    sketches, labels = examples[operator.name]
                    sketches.append(sketch)
                    labels.append(int(score - base > self.config.thre))
            service.close()  # releases a pool backend's workers, if any
        for name, (sketches, labels) in examples.items():
            if not sketches or len(set(labels)) < 2:
                continue  # no signal for this transformation
            predictor = MLPClassifier(
                hidden_sizes=(16,), n_epochs=40, seed=self.config.seed
            )
            predictor.fit(np.vstack(sketches), np.array(labels))
            self._predictors[name] = predictor
        return self

    @property
    def is_pretrained(self) -> bool:
        return bool(self._predictors)

    def recommend(self, column: np.ndarray) -> list[str]:
        """Unary operators predicted to improve this feature."""
        if not self.is_pretrained:
            raise RuntimeError("LFE.pretrain must run before recommendations")
        sketch = self.sketch.compress(np.asarray(column)).reshape(1, -1)
        recommended = []
        for name, predictor in self._predictors.items():
            proba = predictor.predict_proba(sketch)
            classes = list(predictor.classes_)
            positive = classes.index(1) if 1 in classes else len(classes) - 1
            if proba[0, positive] >= 0.5:
                recommended.append(name)
        return recommended

    # -- online phase --------------------------------------------------------
    def fit(self, task: TabularTask) -> AFEResult:
        """Apply recommended transformations and evaluate once."""
        from ..core.engine import AFEEngine
        from ..core.filters import KeepAllFilter

        if not self.is_pretrained:
            raise RuntimeError("LFE.pretrain must run before fit")
        started = time.perf_counter()
        prefilter = AFEEngine(KeepAllFilter(), self.config)
        working = prefilter._select_agent_features(task)
        evaluator = DownstreamEvaluator(
            task=working.task,
            n_splits=self.config.n_splits,
            n_estimators=self.config.n_estimators,
            seed=self.config.seed,
        )
        service = self._make_service(evaluator)
        matrix = working.X.to_array()
        base_score = service.evaluate(matrix, working.y)
        columns = [matrix]
        names = list(working.X.columns)
        n_generated = 0
        for name in working.X.columns:
            column = np.asarray(working.X[name])
            for operator_name in self.recommend(column):
                operator = self.registry.by_name(operator_name)
                columns.append(operator.apply(column).reshape(-1, 1))
                names.append(f"{operator_name}({name})")
                n_generated += 1
        augmented = sanitize_matrix(np.column_stack(columns))
        final_score = (
            service.evaluate(augmented, working.y) if n_generated else base_score
        )
        best_score = max(base_score, final_score)
        elapsed = time.perf_counter() - started
        service.close()  # releases a pool backend's workers, if any
        result = AFEResult(
            dataset=task.name,
            method=self.method_name,
            task=task.task,
            base_score=base_score,
            best_score=best_score,
            selected_features=names if final_score >= base_score else names[: matrix.shape[1]],
            history=[
                EpochRecord(0, elapsed, evaluator.n_evaluations, best_score)
            ],
            n_downstream_evaluations=evaluator.n_evaluations,
            n_generated=n_generated,
            n_cache_hits=service.n_cache_hits,
            n_cache_misses=service.n_cache_misses,
            n_backend_fallbacks=service.stats.n_backend_fallbacks,
            evaluation_time=evaluator.total_eval_time,
            selected_matrix=augmented if final_score >= base_score else matrix,
            wall_time=elapsed,
        )
        result.absorb_fidelity_stats(service.stats)
        return result
