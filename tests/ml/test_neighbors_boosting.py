"""Unit tests for KNN and gradient boosting models."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    KNeighborsClassifier,
    KNeighborsRegressor,
    accuracy_score,
    one_minus_rae,
)


def _blobs(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(-2, 0.5, (n // 2, 2)), rng.normal(2, 0.5, (n // 2, 2))])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestKNeighborsClassifier:
    def test_separable_blobs(self):
        X, y = _blobs()
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.98

    def test_k_one_memorizes_training_set(self):
        X, y = _blobs(60)
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        np.testing.assert_array_equal(model.predict(X), y)

    def test_k_larger_than_dataset_clamped(self):
        X, y = _blobs(10)
        model = KNeighborsClassifier(n_neighbors=100).fit(X, y)
        predictions = model.predict(X)
        assert len(predictions) == 10

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict(np.zeros((2, 2)))

    def test_feature_mismatch(self):
        X, y = _blobs(20)
        model = KNeighborsClassifier().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 5)))

    def test_nan_query_handled(self):
        X, y = _blobs(40)
        model = KNeighborsClassifier().fit(X, y)
        query = X.copy()
        query[0, 0] = np.nan
        assert len(model.predict(query)) == 40


class TestKNeighborsRegressor:
    def test_learns_smooth_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-3, 3, size=(300, 1))
        y = np.sin(X[:, 0])
        model = KNeighborsRegressor(n_neighbors=5).fit(X, y)
        assert one_minus_rae(y, model.predict(X)) > 0.9

    def test_prediction_is_neighbor_mean(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2, standardize=False).fit(X, y)
        # Query at 0.4: nearest two rows are 0.0 and 1.0 -> mean 1.0.
        assert model.predict(np.array([[0.4]]))[0] == pytest.approx(1.0)


class TestGradientBoostingRegressor:
    def test_fits_nonlinear_target(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, size=(300, 2))
        y = X[:, 0] ** 2 + X[:, 1]
        model = GradientBoostingRegressor(n_estimators=60, seed=0).fit(X, y)
        assert one_minus_rae(y, model.predict(X)) > 0.9

    def test_more_estimators_fit_train_better(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(200, 2))
        y = X[:, 0] * X[:, 1]
        weak = GradientBoostingRegressor(n_estimators=5, seed=0).fit(X, y)
        strong = GradientBoostingRegressor(n_estimators=80, seed=0).fit(X, y)
        weak_err = np.mean((weak.predict(X) - y) ** 2)
        strong_err = np.mean((strong.predict(X) - y) ** 2)
        assert strong_err < weak_err

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((1, 1)))


class TestGradientBoostingClassifier:
    def test_binary_blobs(self):
        X, y = _blobs()
        model = GradientBoostingClassifier(n_estimators=20, seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.97

    def test_learns_interaction(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 2))
        y = ((X[:, 0] * X[:, 1]) > 0).astype(int)
        model = GradientBoostingClassifier(n_estimators=40, seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_proba_normalized(self):
        X, y = _blobs()
        proba = GradientBoostingClassifier(n_estimators=10).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_multiclass(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 2))
        y = np.digitize(X[:, 0], [-0.7, 0.7])
        model = GradientBoostingClassifier(n_estimators=30, seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_single_class(self):
        X = np.zeros((10, 2))
        model = GradientBoostingClassifier().fit(X, np.ones(10))
        assert set(model.predict(X)) == {1.0}

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().predict_proba(np.zeros((1, 1)))
