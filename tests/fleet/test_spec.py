"""Cell specs: the worker materializes exactly what the leader saw."""

import json

import numpy as np
import pytest

from repro.bench.harness import bench_config
from repro.core.fpe import FPEModel
from repro.datasets import make_classification
from repro.fleet.spec import (
    SPEC_VERSION,
    CellSpec,
    fpe_from_doc,
    fpe_to_doc,
    task_from_doc,
    task_to_doc,
)


@pytest.fixture
def task():
    return make_classification(
        name="spec-task", n_samples=60, n_features=4, seed=3
    )


class TestTaskRoundTrip:
    def test_arrays_survive_bit_identically(self, task):
        rebuilt = task_from_doc(json.loads(json.dumps(task_to_doc(task))))
        assert rebuilt.name == task.name
        assert rebuilt.task == task.task
        assert list(rebuilt.X.columns) == list(task.X.columns)
        for column in task.X.columns:
            original = np.asarray(task.X[column])
            restored = np.asarray(rebuilt.X[column])
            assert restored.dtype == original.dtype
            # Bitwise equality, not approximate: JSON's float round
            # trip is exact, which is what makes fleet results
            # bit-identical to serial ones.
            np.testing.assert_array_equal(restored, original)
        np.testing.assert_array_equal(rebuilt.y, task.y)


class TestFpeRoundTrip:
    def test_none_stays_none(self):
        assert fpe_to_doc(None) is None
        assert fpe_from_doc(None) is None

    def test_default_identity_rebuilds_same_model(self):
        from repro.core.pretrain import default_fpe

        model = default_fpe(seed=0)
        rebuilt = fpe_from_doc(fpe_to_doc(model))
        assert (rebuilt.method, rebuilt.d, rebuilt.seed, rebuilt.thre) == (
            model.method, model.d, model.seed, model.thre,
        )
        # default_fpe is process-cached, so a worker draining many
        # cells sharing one FPE identity pre-trains at most once.
        assert fpe_from_doc(fpe_to_doc(model)) is rebuilt

    def test_custom_threshold_goes_through_pretrain(self):
        doc = {"method": "ccws", "d": 8, "seed": 1, "thre": 0.05}
        rebuilt = fpe_from_doc(doc)
        assert rebuilt.thre == 0.05
        assert rebuilt.d == 8
        assert rebuilt is not fpe_from_doc(doc)  # uncached path


class TestCellSpec:
    def test_json_round_trip(self, task):
        config = bench_config(seed=2)
        spec = CellSpec.build(task, "NFS", config, None, "hash|fpe:none")
        restored = CellSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.seed == 2

    def test_materialize_rebuilds_run_single_arguments(self, task, tmp_path):
        config = bench_config(seed=1)
        spec = CellSpec.build(task, "NFS", config, None, "h")
        rebuilt_task, rebuilt_config, rebuilt_fpe = spec.materialize(
            eval_store_path=str(tmp_path / "sweep.db")
        )
        assert rebuilt_task.name == task.name
        assert rebuilt_fpe is None
        assert rebuilt_config.eval_store_path == str(tmp_path / "sweep.db")
        # Everything except the execution-only store override matches.
        import dataclasses

        left = dataclasses.asdict(rebuilt_config)
        right = dataclasses.asdict(config)
        left.pop("eval_store_path"), right.pop("eval_store_path")
        assert left == right

    def test_fpe_identity_ships_in_the_spec(self, task):
        model = FPEModel(method="ccws", d=8, seed=0)
        spec = CellSpec.build(task, "E-AFE", bench_config(), model, "h")
        assert spec.fpe_doc == {
            "method": "ccws", "d": 8, "seed": 0, "thre": model.thre,
        }

    def test_version_mismatch_refused(self, task):
        spec = CellSpec.build(task, "NFS", bench_config(), None, "h")
        doc = json.loads(spec.to_json())
        doc["version"] = SPEC_VERSION + 1
        with pytest.raises(ValueError, match="cell-spec version"):
            CellSpec.from_json(json.dumps(doc))
