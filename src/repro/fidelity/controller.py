"""Gating policy: route each candidate to the cheapest sufficient rung.

:class:`FidelityController` is the piece the evaluation service
delegates a batch to when ``eval_fidelity`` is on.  Per candidate, in
order:

1. **exact cache** — a full-CV score under the normal key, or a
   previously computed rung-0 score under the fidelity-tagged key
   (both are hits; neither pays a fit);
2. **surrogate gate** — candidates whose quantile-sketch bucket has
   absorbed enough real scores are served from the fitted bucket
   estimator (``n_surrogate_served``); known-but-too-uncertain buckets
   fall back to a real evaluation (``n_surrogate_fallbacks``);
3. **rung 0** — with the ladder on, the remaining misses pay a cheap
   truncated/subsampled-fold fit in the calling process
   (``n_lowfi_scored``), and only the batch's top fraction by rung-0
   score is **promoted** to full CV through the service's configured
   backend (``n_promoted``) — serial, process, and shared-memory pool
   all serve the promoted set;
4. **audit** — every ``audit``-th approximate result additionally pays
   a full-CV fit; the absolute delta between the reported approximate
   score and the true one accumulates into ``fidelity_regret``, so
   every speedup this subsystem reports ships next to its measured
   accuracy cost.

Cache-key hygiene: low-fidelity scores are stored under
``<key>|fid=<rung>`` (see ``repro.store.FIDELITY_KEY_MARKER``), so a
fidelity-on run can warm a shared store without a fidelity-off run —
which only ever looks up unmarked keys — observing a single
approximate score.  Audited and promoted scores are genuine full-CV
results and land under the normal keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..store.backends import FIDELITY_KEY_MARKER
from .config import FidelitySpec
from .ladder import FidelityLadder
from .surrogate import SurrogateGate

if TYPE_CHECKING:  # pragma: no cover - typing only (no import cycle)
    import numpy as np

    from ..eval.service import EvaluationService

__all__ = ["FidelityController", "make_fidelity"]


def make_fidelity(
    spec: FidelitySpec | str | None, seed: int = 0
) -> "FidelityController | None":
    """Build a controller from a spec (string or parsed); ``None`` if off."""
    if spec is None:
        return None
    if not isinstance(spec, FidelitySpec):
        spec = FidelitySpec.parse(spec)
    if not spec.enabled:
        return None
    return FidelityController(spec, seed=seed)


class FidelityController:
    """Multi-fidelity scoring policy bound to one evaluation service run."""

    def __init__(self, spec: FidelitySpec, seed: int = 0) -> None:
        if not spec.enabled:
            raise ValueError(
                "FidelityController needs an enabled spec; the service "
                "runs the exact path when fidelity is off"
            )
        self.spec = spec
        self.seed = int(seed)
        self.ladder = FidelityLadder(spec, seed=seed) if spec.ladder else None
        self.surrogate = (
            SurrogateGate(
                min_observations=spec.min_observations,
                max_halfwidth=spec.max_halfwidth,
            )
            if spec.surrogate
            else None
        )
        # Deterministic audit schedule over approximate results.
        self._approx_count = 0

    # -- keys ----------------------------------------------------------------
    def lowfi_key(self, key: str) -> str:
        """Fidelity-namespace twin of a full-CV cache key."""
        return f"{key}{FIDELITY_KEY_MARKER}{self.spec.rung_token}"

    def _surrogate_key(self, token: str, target_token: str, bucket: str) -> str:
        # The base-matrix token is part of the key: near-duplicate
        # candidates only share a score distribution against the *same*
        # accepted-feature state.
        return f"{token}|{target_token}|{bucket}"

    # -- policy --------------------------------------------------------------
    def _should_audit(self) -> bool:
        """Whether the approximate result just produced gets audited."""
        if not self.spec.audit_period:
            return False
        self._approx_count += 1
        return self._approx_count % self.spec.audit_period == 0

    def score_batch(
        self,
        service: "EvaluationService",
        base: "np.ndarray",
        columns: list,
        y: "np.ndarray",
        token: str,
        target_token: str,
    ) -> list[float]:
        """Fidelity-laddered counterpart of ``EvaluationService.score_batch``.

        Accounting invariant (asserted by the throughput benchmark):
        every submission is exactly one of a cache hit, a cache miss
        (it reached rung 0 or full CV), or a surrogate serve —
        ``n_hits + n_misses + n_surrogate_served`` grows by
        ``len(columns)``.  Audit fits are extra real evaluations on
        top, never a fourth lookup category.
        """
        stats = service.stats
        cache = service.cache
        scores: list[float | None] = [None] * len(columns)
        keys: list[str] = []
        first_of_key: dict[str, int] = {}
        duplicates_of: dict[int, list[int]] = {}
        surrogate_key_of: dict[int, str] = {}
        lowfi_positions: list[int] = []
        full_positions: list[int] = []
        audit_positions: list[int] = []
        for index, column in enumerate(columns):
            key = service._candidate_key(token, column, target_token)
            keys.append(key)
            primary = first_of_key.get(key)
            if primary is not None:
                # In-batch duplicate: resolved once, later ones are hits.
                stats.n_hits += 1
                duplicates_of.setdefault(primary, []).append(index)
                continue
            first_of_key[key] = index
            cached = cache.get(key) if cache is not None else None
            if cached is not None:
                stats.n_hits += 1
                scores[index] = float(cached)
                continue
            if self.ladder is not None and cache is not None:
                lowfi_cached = cache.get(self.lowfi_key(key))
                if lowfi_cached is not None:
                    stats.n_hits += 1
                    scores[index] = float(lowfi_cached)
                    continue
            if self.surrogate is not None:
                surrogate_key = self._surrogate_key(
                    token, target_token, service._fingerprinter.bucket(column)
                )
                surrogate_key_of[index] = surrogate_key
                served = self.surrogate.serve(surrogate_key)
                if served is not None:
                    # Served from the fitted estimator: no fit, and —
                    # deliberately — *not* a cache miss (the invariant
                    # above is what the accounting-fix satellite pins).
                    stats.n_surrogate_served += 1
                    scores[index] = float(served)
                    if self._should_audit():
                        audit_positions.append(index)
                    continue
                if self.surrogate.n_observations(surrogate_key) > 0:
                    stats.n_surrogate_fallbacks += 1
            stats.n_misses += 1
            service._note_near_duplicate(column)
            if self.ladder is not None:
                lowfi_positions.append(index)
            else:
                full_positions.append(index)
        fresh_entries: list[tuple[str, float]] = []
        if lowfi_positions:
            rung_scores = self._score_rung0(
                service, base, token, columns, lowfi_positions, y, target_token
            )
            stats.n_lowfi_scored += len(lowfi_positions)
            promoted, rejected = self.ladder.promote(rung_scores)
            stats.n_promoted += len(promoted)
            full_positions.extend(lowfi_positions[p] for p in promoted)
            full_positions.sort()
            for p in rejected:
                index = lowfi_positions[p]
                scores[index] = float(rung_scores[p])
                fresh_entries.append((self.lowfi_key(keys[index]), scores[index]))
                if self._should_audit():
                    audit_positions.append(index)
        if full_positions:
            fresh = service._dispatch_missing(
                base, token, columns, full_positions, y, target_token
            )
            for index, score in zip(full_positions, fresh):
                scores[index] = float(score)
                fresh_entries.append((keys[index], scores[index]))
                self._observe_surrogate(surrogate_key_of, index, scores[index])
        if audit_positions:
            audit_positions.sort()
            true_scores = service._dispatch_missing(
                base, token, columns, audit_positions, y, target_token
            )
            for index, true_score in zip(audit_positions, true_scores):
                stats.n_audited += 1
                stats.fidelity_regret_total += abs(
                    float(true_score) - scores[index]
                )
                # The audit's full-CV score is genuine: store it under
                # the normal key (and fit the surrogate on it), but keep
                # *reporting* the approximate score — the audit measures
                # the policy, it must not change it.
                fresh_entries.append((keys[index], float(true_score)))
                self._observe_surrogate(
                    surrogate_key_of, index, float(true_score)
                )
        for primary, duplicate_indexes in duplicates_of.items():
            for index in duplicate_indexes:
                scores[index] = scores[primary]
        service._store_many(fresh_entries)
        return [float(score) for score in scores]

    def _observe_surrogate(
        self, surrogate_key_of: dict[int, str], index: int, score: float
    ) -> None:
        """Fit one real full-CV score into the surrogate (when gated)."""
        if self.surrogate is None:
            return
        key = surrogate_key_of.get(index)
        if key is not None:
            self.surrogate.observe(key, score)

    def _score_rung0(
        self,
        service: "EvaluationService",
        base: "np.ndarray",
        token: str,
        columns: list,
        positions: list[int],
        y: "np.ndarray",
        target_token: str,
    ) -> list[float]:
        """Rung-0 fits: arena-backed serial loop over the cheap fold plan.

        Runs in the calling process on purpose — a rung-0 fit is
        ``rung_folds/n_splits · row_fraction`` of a full one, cheaper
        than a round-trip through a worker, and keeping rung 0 local
        leaves the parallel backend entirely to the promoted set.
        """
        folds = self.ladder.rung0_folds(service._plan(y), target_token)
        return service._score_missing_serial(
            base, token, columns, positions, y, folds=folds
        )
