"""Ablation (paper Q6): why MinHash, vs related-work signatures.

Section IV-G argues MinHash is chosen because it compresses arbitrary
sample counts into a fixed size *and* preserves sample-alignment
similarity.  This ablation trains the identical FPE classifier over
six signature backends — the weighted-MinHash family vs feature
hashing, quantile sketches, and hand-crafted meta-features — and
checks that every backend yields a usable model while the sketching
approaches remain competitive (the paper's Table III corollary that
the hash-family choice makes "little difference" among CWS variants).
"""

import numpy as np

from repro.bench.experiments import ablation_q6_signatures, format_ablation_q6


def test_ablation_q6_signatures(benchmark):
    rows = benchmark.pedantic(ablation_q6_signatures, rounds=1, iterations=1)
    print("\n" + format_ablation_q6(rows))
    backends = {r["backend"] for r in rows}
    assert {"ccws", "icws", "minhash", "fhash", "quantile", "meta"} == backends
    for row in rows:
        assert 0.0 <= row["precision"] <= 1.0
        assert 0.0 <= row["recall"] <= 1.0
        assert np.isfinite(row["accuracy"])
    # The paper's chosen family must be usable: at least one CWS
    # backend achieves non-trivial recall on the validation corpus.
    cws_recall = max(
        r["recall"] for r in rows if r["backend"] in ("ccws", "icws")
    )
    assert cws_recall > 0.0
