"""Unit + integration tests for the FeatureTransformer inference path."""

import numpy as np
import pytest

from repro.core import EAFE, EngineConfig, FeatureTransformer, FPEModel
from repro.core.pretrain import make_evaluator_factory
from repro.datasets import make_classification
from repro.frame import Frame

# The class is deprecated in favour of repro.api.FeaturePlan; its
# behaviour is still under contract until removal, so the suite keeps
# exercising it with the warning silenced.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestDeprecation:
    def test_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="FeaturePlan"):
            FeatureTransformer(["f1"])


class TestBasics:
    def test_empty_names_is_identity(self):
        # A search that found no improvement yields an empty selection;
        # that is a legitimate identity pipeline, not an error.
        transformer = FeatureTransformer([])
        frame = Frame({"f1": [1.0, 2.0], "f2": [3.0, 4.0]})
        out = transformer.transform(frame)
        assert out.columns == ["f1", "f2"]
        np.testing.assert_array_equal(out.to_array(), frame.to_array())
        assert transformer.max_order == 0
        assert transformer.required_columns == set()

    def test_required_columns(self):
        transformer = FeatureTransformer(["f1", "mul(f1,f2)", "log(f3)"])
        assert transformer.required_columns == {"f1", "f2", "f3"}

    def test_max_order(self):
        transformer = FeatureTransformer(["f1", "log(minmax(f1))"])
        assert transformer.max_order == 3

    def test_transform_produces_all_features(self):
        frame = Frame({"f1": [1.0, 4.0], "f2": [2.0, 3.0]})
        transformer = FeatureTransformer(["f1", "mul(f1,f2)"])
        out = transformer.transform(frame)
        assert out.columns == ["f1", "mul(f1,f2)"]
        np.testing.assert_allclose(out["mul(f1,f2)"], [2.0, 12.0])

    def test_missing_column_rejected(self):
        transformer = FeatureTransformer(["mul(f1,f2)"])
        with pytest.raises(KeyError, match="missing columns"):
            transformer.transform(Frame({"f1": [1.0]}))

    def test_transform_array(self):
        frame = Frame({"f1": [1.0, 2.0]})
        out = FeatureTransformer(["f1", "sqrt(f1)"]).transform_array(frame)
        assert out.shape == (2, 2)

    def test_repr(self):
        assert "n_features=2" in repr(FeatureTransformer(["f1", "log(f1)"]))


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        transformer = FeatureTransformer(["f1", "div(f1,f2)"])
        path = tmp_path / "pipeline.json"
        transformer.save(path)
        restored = FeatureTransformer.load(path)
        assert restored.feature_names == transformer.feature_names
        frame = Frame({"f1": [4.0], "f2": [2.0]})
        np.testing.assert_array_equal(
            restored.transform_array(frame), transformer.transform_array(frame)
        )


class TestEndToEndInference:
    def test_replays_engine_selection_on_training_data(self):
        # The transformer applied to training data must reproduce the
        # engine's cached best matrix column by column (stateless
        # operators only — minmax columns are checked separately).
        corpus = [
            make_classification(n_samples=50, n_features=4, seed=s)
            for s in range(2)
        ]
        fpe = FPEModel(d=8, seed=0)
        fpe.fit(corpus, make_evaluator_factory(), generated_per_dataset=2)
        task = make_classification(n_samples=120, n_features=5, seed=21)
        config = EngineConfig(
            n_epochs=3, stage1_epochs=1, transforms_per_agent=3,
            n_splits=3, n_estimators=3, max_agents=5, seed=0,
        )
        result = EAFE(fpe, config).fit(task)
        transformer = FeatureTransformer.from_result(result)
        replayed = transformer.transform_array(task.X)
        assert replayed.shape == result.selected_matrix.shape
        for j, name in enumerate(result.selected_features):
            np.testing.assert_allclose(
                replayed[:, j],
                result.selected_matrix[:, j],
                rtol=1e-9,
                atol=1e-9,
                err_msg=name,
            )

    def test_applies_to_unseen_rows(self):
        task = make_classification(n_samples=100, n_features=4, seed=22)
        transformer = FeatureTransformer(
            ["f0", "mul(f0,f1)", "log(f2)", "div(f3,f0)"]
        )
        unseen = make_classification(n_samples=37, n_features=4, seed=99).X
        out = transformer.transform(unseen)
        assert out.shape == (37, 4)
        assert out.isfinite()
