"""Quickstart: engineer features through the sklearn-style front door.

Run:
    python examples/quickstart.py

The whole public API in four lines: construct an
``AutoFeatureEngineer``, ``fit(X, y)``, ``transform(X)``, save the
``FeaturePlan``.  Everything else — task construction, method
dispatch through the searcher registry, FPE wiring, eval caching —
happens behind the estimator.
"""

from repro import AutoFeatureEngineer, EngineConfig, pretrain_fpe
from repro.datasets import load


def main() -> None:
    print("1) Pre-training the FPE model on public datasets ...")
    fpe = pretrain_fpe(n_train=6, n_validation=2, scale=0.25, seed=0)
    print(f"   done: method={fpe.method}, signature dim d={fpe.d}")

    print("2) Loading the PimaIndian target dataset ...")
    task = load("PimaIndian", max_samples=300)
    print(f"   {task.name}: {task.n_samples} samples x {task.n_features} features")

    print("3) Fitting AutoFeatureEngineer (reduced epochs for a quick demo) ...")
    config = EngineConfig(
        n_epochs=6,
        stage1_epochs=2,
        transforms_per_agent=3,
        n_splits=3,
        n_estimators=5,
        seed=0,
    )
    afe = AutoFeatureEngineer(method="E-AFE", config=config, fpe=fpe)
    engineered = afe.fit_transform(task.X, task.y)
    result = afe.result_

    print()
    print(f"   base score (raw features):      {result.base_score:.4f}")
    print(f"   best score (engineered):        {result.best_score:.4f}")
    print(f"   improvement:                    {result.improvement:+.4f}")
    print(f"   downstream evaluations:         {result.n_downstream_evaluations}")
    print(f"   candidates generated:           {result.n_generated}")
    print(f"   filtered out by FPE:            {result.n_filtered_out}")
    drop_rate = result.n_filtered_out / max(result.n_generated, 1)
    print(f"   drop rate:                      {drop_rate:.0%}")
    print(f"   engineered matrix shape:        {engineered.shape}")
    print()
    print("   the deployable plan:")
    print(f"     {afe.plan_!r}")
    for name in afe.plan_.output_columns:
        print(f"     - {name}")
    print()
    print("   persist it with afe.save_plan('features.plan.json') and serve")
    print("   it anywhere with FeaturePlan.load(...).transform(X) — see")
    print("   examples/deploy_pipeline.py for the full production story.")


if __name__ == "__main__":
    main()
