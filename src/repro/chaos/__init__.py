"""Seeded, deterministic fault injection (``REPRO_FAULTS``)."""

from .faults import (
    FAULT_SITES,
    FAULTS_ENV,
    FaultInjected,
    FaultPlan,
    SiteFault,
    active,
    current,
    fault_counts,
    install,
    install_from_env,
    maybe_fault,
    reset,
)

__all__ = [
    "FAULT_SITES",
    "FAULTS_ENV",
    "FaultInjected",
    "FaultPlan",
    "SiteFault",
    "active",
    "current",
    "fault_counts",
    "install",
    "install_from_env",
    "maybe_fault",
    "reset",
]
