"""python -m repro.fleet CLI: leader, worker, and status subcommands."""

import pytest
from fleet_helpers import make_cell

from repro.fleet.__main__ import main
from repro.store import RunStore


@pytest.fixture
def store(tmp_path):
    return RunStore(str(tmp_path / "cli.db"))


class TestLeaderCommand:
    def test_enqueue_only_exits_after_the_pass(self, store, capsys):
        assert main(
            ["leader", store.path, "--exp", "table1",
             "--datasets", "PimaIndian", "--enqueue-only"]
        ) == 0
        assert "Pending" in capsys.readouterr().out
        assert store.queue_counts() == {"pending": 1}

    def test_unknown_experiment_rejected(self, store):
        with pytest.raises(SystemExit):
            main(["leader", store.path, "--exp", "table99"])

    def test_timeout_returns_nonzero(self, store, capsys):
        store.enqueue_cells([("ds", "NFS", 0, "h", "{}")])
        assert main(
            ["leader", store.path, "--exp", "table1",
             "--datasets", "PimaIndian", "--timeout", "0.1",
             "--no-render"]
        ) == 1
        assert "timed out" in capsys.readouterr().err

    def test_leader_renders_after_worker_drain(self, store, capsys):
        """Full CLI loop in one process: enqueue-only leader, worker
        subcommand drains, supervising leader renders the table."""
        assert main(
            ["leader", store.path, "--exp", "table1",
             "--datasets", "PimaIndian", "--enqueue-only"]
        ) == 0
        assert main(["worker", store.path, "--worker-id", "w0"]) == 0
        assert main(
            ["leader", store.path, "--exp", "table1",
             "--datasets", "PimaIndian"]
        ) == 0
        captured = capsys.readouterr()
        assert "PimaIndian" in captured.out
        assert "drained" in captured.err

    def test_dead_cells_block_the_render(self, store, capsys):
        import time

        # One dead-lettered cell alongside an otherwise-drained sweep:
        # the leader must refuse to render rather than silently re-fit.
        store.enqueue_cells([("ds", "NFS", 0, "h", "{}")], max_retries=1)
        store.claim_cell("w0", lease_ttl=0.01)
        time.sleep(0.05)
        store.reap_expired()
        assert main(
            ["leader", store.path, "--exp", "table1",
             "--datasets", "PimaIndian", "--enqueue-only"]
        ) == 0
        assert main(["worker", store.path]) == 0
        assert main(
            ["leader", store.path, "--exp", "table1",
             "--datasets", "PimaIndian", "--timeout", "10"]
        ) == 1
        assert "dead-lettered" in capsys.readouterr().err


class TestWorkerCommand:
    def test_worker_reports_stats(self, store, capsys):
        make_cell(store, seed=0)
        assert main(["worker", store.path, "--worker-id", "w0"]) == 0
        assert "claimed=1 completed=1" in capsys.readouterr().err


class TestStatusCommand:
    def test_status_snapshot(self, store, capsys):
        assert main(["status", store.path]) == 0
        assert "queue empty" in capsys.readouterr().out
        store.enqueue_cells([("ds", "NFS", 0, "h", "{}")])
        assert main(["status", store.path]) == 0
        assert "progress: 0/1" in capsys.readouterr().out

    def test_status_watch_exits_on_drain(self, store, capsys):
        store.enqueue_cells([("ds", "NFS", 0, "h", "{}")])
        store.complete_cell(store.claim_cell("w0").token)
        assert main(["status", store.path, "--watch", "0.01"]) == 0
        assert "progress: 1/1" in capsys.readouterr().out
