"""FPE model persistence: save once, deploy everywhere.

The paper's deployment argument (Section III-D) is that FPE is trained
once on public data and *reused* across target datasets — which only
works in practice if the model survives the process that trained it.
This module serializes a fitted :class:`FPEModel` (compressor
configuration + logistic-regression classifier weights) to a portable
JSON document.

Only the default LogisticRegression classifier is serializable; models
fitted with custom classifiers raise a clear error rather than writing
something unloadable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..ml.linear import LogisticRegression
from .fpe import FPEModel

__all__ = ["save_fpe", "load_fpe", "fpe_to_dict", "fpe_from_dict"]

_FORMAT_VERSION = 1


def fpe_to_dict(model: FPEModel) -> dict:
    """Serializable representation of a fitted FPE model."""
    if not model.is_fitted:
        raise ValueError("cannot serialize an unfitted FPE model")
    payload: dict = {
        "format_version": _FORMAT_VERSION,
        "method": model.method,
        "d": model.d,
        "seed": model.seed,
        "thre": model.thre,
    }
    if model._single_class is not None:
        payload["single_class"] = model._single_class
        return payload
    classifier = model._fitted
    if not isinstance(classifier, LogisticRegression):
        raise TypeError(
            "only LogisticRegression-backed FPE models are serializable; "
            f"got {type(classifier).__name__}"
        )
    payload["classifier"] = {
        "lr": classifier.lr,
        "n_iter": classifier.n_iter,
        "l2": classifier.l2,
        "standardize": classifier.standardize,
        "classes": classifier.classes_.tolist(),
        "weights": classifier._weights.tolist(),
        "scaler_mean": (
            classifier._scaler.mean_.tolist() if classifier._scaler else None
        ),
        "scaler_scale": (
            classifier._scaler.scale_.tolist() if classifier._scaler else None
        ),
    }
    return payload


def fpe_from_dict(payload: dict) -> FPEModel:
    """Rebuild a fitted FPE model from :func:`fpe_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported FPE format version {version!r}")
    model = FPEModel(
        method=payload["method"],
        d=int(payload["d"]),
        seed=int(payload["seed"]),
        thre=float(payload["thre"]),
    )
    if "single_class" in payload:
        model._single_class = int(payload["single_class"])
        return model
    spec = payload["classifier"]
    classifier = LogisticRegression(
        lr=spec["lr"],
        n_iter=int(spec["n_iter"]),
        l2=spec["l2"],
        standardize=bool(spec["standardize"]),
    )
    classifier.classes_ = np.asarray(spec["classes"], dtype=np.float64)
    classifier._weights = np.asarray(spec["weights"], dtype=np.float64)
    if spec["scaler_mean"] is not None:
        from ..ml.preprocessing import StandardScaler

        scaler = StandardScaler()
        scaler.mean_ = np.asarray(spec["scaler_mean"], dtype=np.float64)
        scaler.scale_ = np.asarray(spec["scaler_scale"], dtype=np.float64)
        classifier._scaler = scaler
    model._fitted = classifier
    model._single_class = None
    return model


def save_fpe(model: FPEModel, path: str | Path) -> None:
    """Write a fitted FPE model to ``path`` as JSON."""
    Path(path).write_text(json.dumps(fpe_to_dict(model)), encoding="utf-8")


def load_fpe(path: str | Path) -> FPEModel:
    """Load a fitted FPE model saved by :func:`save_fpe`."""
    return fpe_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
