"""Deterministic fault injection for the reliability harness.

A :class:`FaultPlan` maps *named fault sites* (``store.put``,
``pool.fit``, ...) to seeded fault specs.  Call sites sprinkle
:func:`maybe_fault` at the few places where production failures
actually originate; when no plan is installed the call is a module
attribute load plus one ``is None`` test — cheap enough to leave in
hot paths permanently.

Determinism: whether the *i*-th arrival at a site fires is a pure
function of ``(seed, site, i)`` (a BLAKE2b hash mapped to ``[0, 1)``),
never of wall-clock time or cross-site interleaving.  Two runs with
the same plan therefore observe bit-identical fault sequences at every
site, which is what lets chaos tests assert exact final scores instead
of "it didn't crash".

The plan grammar (also accepted via the ``REPRO_FAULTS`` environment
variable)::

    site:kind=prob[:after=N][:secs=S][,site:kind=prob...][@seed=N]

    REPRO_FAULTS="store.put:err=0.1,pool.fit:hang=0.02:secs=30@seed=7"

``err`` raises :class:`FaultInjected`; ``hang`` sleeps ``secs``
(default 5.0) to simulate a stall.  ``after=N`` leaves the first *N*
arrivals at the site fault-free — useful for warming a cache before
degrading its source.  ``seed`` defaults to 0.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "FAULT_SITES",
    "FAULTS_ENV",
    "FaultInjected",
    "FaultPlan",
    "SiteFault",
    "active",
    "fault_counts",
    "install",
    "install_from_env",
    "maybe_fault",
    "reset",
]

FAULTS_ENV = "REPRO_FAULTS"

#: Every named fault site wired into the codebase.  Plans naming a
#: site outside this registry are rejected at parse time so typos in
#: ``REPRO_FAULTS`` fail loudly instead of silently injecting nothing.
FAULT_SITES = (
    "store.get",
    "store.put",
    "runs.claim",
    "pool.fit",
    "fleet.heartbeat",
    "registry.load",
    "serve.handle",
)

_KINDS = ("err", "hang")


class FaultInjected(RuntimeError):
    """Raised by an ``err`` fault firing at a chaos site."""

    def __init__(self, site: str, index: int):
        super().__init__(f"injected fault at {site!r} (arrival #{index})")
        self.site = site
        self.index = index


@dataclass(frozen=True)
class SiteFault:
    """One fault spec attached to a site."""

    site: str
    kind: str  # "err" | "hang"
    probability: float
    after: int = 0  # first `after` arrivals never fire
    seconds: float = 5.0  # hang duration

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; "
                f"known sites: {', '.join(FAULT_SITES)}"
            )
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected err|hang"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.after < 0:
            raise ValueError("after= must be >= 0")
        if self.seconds < 0:
            raise ValueError("secs= must be >= 0")


def _decision(seed: int, site: str, kind: str, index: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one arrival."""
    digest = hashlib.blake2b(
        f"{seed}|{site}|{kind}|{index}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass
class FaultPlan:
    """A seeded set of site faults with per-site arrival counters."""

    faults: dict = field(default_factory=dict)  # site -> list[SiteFault]
    seed: int = 0

    def __post_init__(self):
        self._lock = threading.Lock()
        self._arrivals: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    # -- parsing -----------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar into a plan."""
        text = text.strip()
        seed = 0
        if "@" in text:
            body, _, tail = text.rpartition("@")
            if not tail.startswith("seed="):
                raise ValueError(
                    f"expected @seed=N suffix, got {'@' + tail!r}"
                )
            seed = int(tail[len("seed="):])
            text = body
        faults: dict[str, list[SiteFault]] = {}
        for entry in filter(None, (e.strip() for e in text.split(","))):
            parts = entry.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"malformed fault entry {entry!r}; "
                    "expected site:kind=prob[:after=N][:secs=S]"
                )
            site = parts[0].strip()
            kind, _, prob = parts[1].partition("=")
            if not prob:
                raise ValueError(
                    f"fault entry {entry!r} is missing a probability "
                    "(expected kind=prob)"
                )
            kwargs: dict[str, float | int] = {}
            for option in parts[2:]:
                key, _, value = option.partition("=")
                if key == "after":
                    kwargs["after"] = int(value)
                elif key == "secs":
                    kwargs["seconds"] = float(value)
                else:
                    raise ValueError(
                        f"unknown fault option {option!r} in {entry!r}"
                    )
            fault = SiteFault(
                site=site,
                kind=kind.strip(),
                probability=float(prob),
                **kwargs,
            )
            faults.setdefault(site, []).append(fault)
        if not faults:
            raise ValueError("fault plan is empty")
        return cls(faults=faults, seed=seed)

    # -- firing ------------------------------------------------------------
    def check(self, site: str) -> None:
        """Record one arrival at ``site`` and fire any matching fault."""
        specs = self.faults.get(site)
        if specs is None:
            return
        with self._lock:
            index = self._arrivals.get(site, 0)
            self._arrivals[site] = index + 1
        for fault in specs:
            if index < fault.after:
                continue
            if _decision(self.seed, site, fault.kind, index) >= (
                fault.probability
            ):
                continue
            with self._lock:
                self._fired[site] = self._fired.get(site, 0) + 1
            if fault.kind == "hang":
                time.sleep(fault.seconds)
                return
            raise FaultInjected(site, index)

    def would_fire(self, site: str, index: int) -> bool:
        """Pure query: does arrival ``index`` at ``site`` fire? (No state.)"""
        for fault in self.faults.get(site, ()):
            if index >= fault.after and _decision(
                self.seed, site, fault.kind, index
            ) < fault.probability:
                return True
        return False

    def fired(self) -> dict[str, int]:
        """Per-site count of faults that have fired so far."""
        with self._lock:
            return dict(self._fired)

    def arrivals(self) -> dict[str, int]:
        """Per-site count of arrivals observed so far."""
        with self._lock:
            return dict(self._arrivals)

    def __repr__(self) -> str:
        sites = ",".join(sorted(self.faults))
        return f"FaultPlan(sites=[{sites}], seed={self.seed})"


# -- module-level installation ---------------------------------------------
# The installed plan is deliberately a plain module global: the
# disabled fast path in maybe_fault() is one attribute load and an
# `is None` test, with no lock and no function-call fan-out.
_PLAN: FaultPlan | None = None


def install(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` as the process-wide fault plan (None disables)."""
    global _PLAN
    _PLAN = plan
    return plan


def install_from_env(environ=None) -> FaultPlan | None:
    """Install a plan from ``REPRO_FAULTS`` if set; else uninstall."""
    environ = os.environ if environ is None else environ
    text = environ.get(FAULTS_ENV, "").strip()
    return install(FaultPlan.parse(text) if text else None)


def reset() -> None:
    """Remove any installed fault plan."""
    install(None)


def active() -> bool:
    """True when a fault plan is installed."""
    return _PLAN is not None


def current() -> FaultPlan | None:
    """The installed fault plan, if any."""
    return _PLAN


def maybe_fault(site: str) -> None:
    """Fire a fault at ``site`` if the installed plan says so.

    No-op (one attribute load + ``is None`` test) when chaos is off.
    """
    plan = _PLAN
    if plan is None:
        return
    plan.check(site)


def fault_counts() -> dict[str, int]:
    """Fired-fault counts per site (empty when chaos is off)."""
    plan = _PLAN
    return plan.fired() if plan is not None else {}


# Forked children inherit the parent's installed plan through module
# state; spawned children re-import, so honor the environment here.
install_from_env()
