"""Fleet under chaos: SIGKILL plus injected heartbeat loss, no double work.

The lease protocol's safety property — at most one worker completes a
cell — must hold even when heartbeats are being dropped by a fault
plan (``fleet.heartbeat:err=...``): a dropped beat merely lets the
lease age; it never corrupts claim ownership.  The queue_claims audit
log is the witness: exactly one ``completed`` outcome per cell, ever.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.bench.harness import bench_config
from repro.datasets import make_classification
from repro.fleet.spec import CellSpec
from repro.store import RunStore, config_hash

from fleet_helpers import canonical

_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

_PLUGIN = """
import os
import time

from repro.api import searcher_registry
from repro.baselines import NFS


class Sleeper:
    def __init__(self, config):
        self.config = config

    def fit(self, task):
        sentinel = os.environ.get("SLEEPER_SENTINEL", "")
        while sentinel and os.path.exists(sentinel):
            time.sleep(0.02)
        return NFS(self.config).fit(task)


searcher_registry().register(
    "Sleeper", lambda config, fpe=None: Sleeper(config)
)
"""


def _wait(predicate, timeout=60.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def plugin_dir(tmp_path):
    directory = tmp_path / "plugins"
    directory.mkdir()
    (directory / "sleeper_plugin.py").write_text(_PLUGIN, encoding="utf-8")
    return str(directory)


def _worker_env(plugin_dir, sentinel="", faults=""):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        [plugin_dir, _SRC, environment.get("PYTHONPATH", "")]
    )
    environment["REPRO_SEARCHER_PLUGINS"] = "sleeper_plugin"
    environment["SLEEPER_SENTINEL"] = sentinel
    if faults:
        environment["REPRO_FAULTS"] = faults
    else:
        environment.pop("REPRO_FAULTS", None)
    return environment


def _spawn_worker(store_path, worker_id, environment, lease_ttl):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.bench", "table1",
            "--store", store_path, "--worker", "--worker-id", worker_id,
            "--lease-ttl", str(lease_ttl),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=environment,
    )


class TestChaosNoDoubleClaims:
    def test_sigkill_under_heartbeat_loss_yields_single_completion(
        self, tmp_path, plugin_dir
    ):
        store = RunStore(str(tmp_path / "sweep.db"))
        task = make_classification(
            name="chaos-fleet", n_samples=60, n_features=3, seed=0
        )
        config = bench_config(seed=0)
        cell_hash = f"{config_hash(config)}|fpe:none"
        spec = CellSpec.build(task, "Sleeper", config, None, cell_hash)
        store.enqueue_cells(
            [(task.name, "Sleeper", 0, cell_hash, spec.to_json())]
        )

        sentinel = str(tmp_path / "hold-the-fit")
        open(sentinel, "w").close()

        # The victim claims, blocks in fit(), and dies by SIGKILL.
        victim = _spawn_worker(
            store.path, "victim", _worker_env(plugin_dir, sentinel),
            lease_ttl=1.0,
        )
        try:
            assert _wait(
                lambda: store.queue_counts().get("running", 0) == 1
            ), "victim never started the cell"
            victim.kill()
            victim.wait()

            assert _wait(lambda: bool(store.reap_expired()), timeout=30.0)

            # The rescuer runs with every second heartbeat dropped by
            # the fault plan; a generous TTL keeps the lease alive
            # through the losses, and the retry policy shields its
            # claim traffic.
            os.unlink(sentinel)
            rescuer = _spawn_worker(
                store.path,
                "rescuer",
                _worker_env(
                    plugin_dir, faults="fleet.heartbeat:err=0.5@seed=3"
                ),
                lease_ttl=60.0,
            )
            assert rescuer.wait(timeout=240) == 0
        finally:
            if victim.poll() is None:
                victim.kill()

        # Safety: the audit log records exactly one completed claim —
        # the victim's expired, the rescuer's completed, nothing else.
        log = store.claim_log()
        outcomes = [(entry["worker_id"], entry["outcome"]) for entry in log]
        assert outcomes == [("victim", "expired"), ("rescuer", "completed")]
        assert sum(
            1 for _, outcome in outcomes if outcome == "completed"
        ) == 1

        cell = store.queue_cells()[0]
        assert cell.status == "completed"
        assert cell.claim_count == 2

        # Liveness + correctness: the chaotic fleet's payload is
        # bit-identical to a fault-free serial run of the same cell.
        serial = RunStore(str(tmp_path / "serial.db"))
        serial.enqueue_cells(
            [(task.name, "Sleeper", 0, cell_hash, spec.to_json())]
        )
        solo = _spawn_worker(
            serial.path, "solo", _worker_env(plugin_dir), lease_ttl=30.0
        )
        assert solo.wait(timeout=240) == 0
        assert canonical(
            store.completed_payload(task.name, "Sleeper", 0, cell_hash)
        ) == canonical(
            serial.completed_payload(task.name, "Sleeper", 0, cell_hash)
        )
