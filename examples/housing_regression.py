"""Housing-price regression: AFE for a regression downstream task.

Run:
    python examples/housing_regression.py

The paper evaluates 10 regression datasets with the 1-RAE metric.  This
example engineers features for the Housing Boston stand-in, then shows
the Table V exercise on a single dataset: the features selected under
the Random-Forest evaluator are re-scored with two other model families
(Gaussian process and MLP) to check they transfer.
"""

from repro import EAFE, EngineConfig, pretrain_fpe
from repro.core import DownstreamEvaluator
from repro.datasets import load


def main() -> None:
    fpe = pretrain_fpe(n_train=6, n_validation=2, scale=0.25, seed=0)
    task = load("Housing Boston", max_samples=300, max_features=8)
    print(
        f"Dataset: {task.name} ({task.n_samples} samples, "
        f"{task.n_features} features, metric: 1-RAE)\n"
    )

    config = EngineConfig(
        n_epochs=6,
        stage1_epochs=2,
        transforms_per_agent=3,
        n_splits=3,
        n_estimators=5,
        seed=0,
    )
    result = EAFE(fpe, config).fit(task)
    print(f"raw-feature score:        {result.base_score:.4f}")
    print(f"engineered-feature score: {result.best_score:.4f}")
    print(f"evaluations spent:        {result.n_downstream_evaluations}")
    print(f"features selected:        {len(result.selected_features)}")

    print("\nDo the engineered features transfer to other models?")
    cached = result.selected_matrix
    if cached is None:
        cached = task.X.to_array()
    for kind, label in (("nb_gp", "Gaussian process"), ("mlp", "MLP")):
        evaluator = DownstreamEvaluator(
            task="R", model_kind=kind, n_splits=3, seed=0
        )
        raw = evaluator.evaluate(task.X.to_array(), task.y)
        engineered = evaluator.evaluate(cached, task.y)
        print(
            f"  {label:>17}: raw={raw:.4f}  engineered={engineered:.4f}  "
            f"delta={engineered - raw:+.4f}"
        )


if __name__ == "__main__":
    main()
