"""Deploying an engineered feature set: fit once, serve anywhere.

Run:
    python examples/deploy_pipeline.py

The production story behind the paper's Section III-D reuse argument,
on the new front-door API:
1. fit an ``AutoFeatureEngineer`` on today's training rows;
2. save its ``FeaturePlan`` — one versioned JSON artifact carrying the
   selected expressions, input schema, operator fingerprint, FPE
   identity, and provenance;
3. reload the plan **in a fresh OS process** (the serving container)
   and transform unseen rows — verified here to be bit-identical to
   the process that produced it.
"""

import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import AutoFeatureEngineer, EngineConfig, pretrain_fpe
from repro.ml import RandomForestClassifier, accuracy_score


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="eafe-deploy-"))

    print("1) Pre-train the FPE model (reused across every future dataset) ...")
    fpe = pretrain_fpe(n_train=6, n_validation=2, scale=0.25, seed=0)

    print("2) Fit AutoFeatureEngineer on the training split ...")
    # One generating process, split into today's training rows and an
    # unseen "tomorrow" batch.
    from repro.datasets import make_classification

    full = make_classification(n_samples=450, n_features=6, seed=123)
    rng = np.random.default_rng(0)
    order = rng.permutation(full.n_samples)
    X, y = full.X.to_array(), full.y
    X_train, y_train = X[order[:300]], y[order[:300]]
    X_unseen, y_unseen = X[order[300:]], y[order[300:]]

    config = EngineConfig(
        n_epochs=5, stage1_epochs=2, transforms_per_agent=3,
        n_splits=3, n_estimators=5, seed=0,
    )
    afe = AutoFeatureEngineer(method="E-AFE", config=config, fpe=fpe)
    afe.fit(X_train, y_train)
    result = afe.result_
    print(
        f"   {result.base_score:.4f} -> {result.best_score:.4f} "
        f"({afe.plan_.n_features} features)"
    )

    print("3) Save the FeaturePlan artifact ...")
    plan_path = workdir / "features.plan.json"
    afe.save_plan(plan_path)
    print(f"   saved -> {plan_path} ({plan_path.stat().st_size} bytes)")
    print(f"   provenance: {afe.plan_.provenance}")

    print("4) Reload + transform in a FRESH OS process (the serving path) ...")
    x_path = workdir / "unseen.npy"
    out_path = workdir / "served.npy"
    np.save(x_path, X_unseen)
    serve_script = (
        "import sys\n"
        "import numpy as np\n"
        "from repro.api import FeaturePlan\n"
        "plan = FeaturePlan.load(sys.argv[1])\n"
        "np.save(sys.argv[3], plan.transform(np.load(sys.argv[2])))\n"
    )
    subprocess.run(
        [sys.executable, "-c", serve_script,
         str(plan_path), str(x_path), str(out_path)],
        check=True,
    )
    served = np.load(out_path)
    in_process = afe.transform(X_unseen)
    identical = served.tobytes() == in_process.tobytes()
    print(f"   fresh-process output bit-identical to in-process: {identical}")

    print("5) Downstream model on engineered vs raw features ...")
    model = RandomForestClassifier(n_estimators=10, seed=0)
    model.fit(afe.transform(X_train), y_train)
    raw_model = RandomForestClassifier(n_estimators=10, seed=0)
    raw_model.fit(X_train, y_train)
    engineered_acc = accuracy_score(y_unseen, model.predict(served))
    raw_acc = accuracy_score(y_unseen, raw_model.predict(X_unseen))
    print(f"   raw-feature accuracy on unseen batch:        {raw_acc:.4f}")
    print(f"   engineered-feature accuracy on unseen batch: {engineered_acc:.4f}")


if __name__ == "__main__":
    main()
