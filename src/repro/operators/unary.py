"""Unary feature-transformation operators (Section II, Action).

The paper uses four unary operators: logarithm, min-max normalization,
square root, and reciprocal.  Every operator here is *safe*: feature
columns may contain any finite values, and the output is always finite
(invalid inputs map to 0).  Silent NaN/inf propagation would crash the
downstream Random Forest thousands of evaluations later, so safety is
enforced at the source.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "safe_log",
    "safe_sqrt",
    "safe_reciprocal",
    "min_max_normalize",
]

_EPSILON = 1e-12


def _finalize(values: np.ndarray) -> np.ndarray:
    """Map any non-finite results to 0 so outputs are always usable."""
    out = np.asarray(values, dtype=np.float64)
    return np.where(np.isfinite(out), out, 0.0)


def safe_log(column: np.ndarray) -> np.ndarray:
    """``log(|x|)``, with log(0) mapped to 0.

    Taking the magnitude first follows the usual AFE convention (e.g.
    NFS): generated intermediate features are routinely negative and the
    transformation must stay total.
    """
    values = np.asarray(column, dtype=np.float64)
    magnitude = np.abs(values)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(magnitude > _EPSILON, np.log(magnitude), 0.0)
    return _finalize(out)


def safe_sqrt(column: np.ndarray) -> np.ndarray:
    """``sqrt(|x|)`` — total on negatives via magnitude."""
    values = np.asarray(column, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        out = np.sqrt(np.abs(values))
    return _finalize(out)


def safe_reciprocal(column: np.ndarray) -> np.ndarray:
    """``1 / x`` with near-zero inputs mapped to 0."""
    values = np.asarray(column, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        out = np.where(np.abs(values) > _EPSILON, 1.0 / values, 0.0)
    return _finalize(out)


def min_max_normalize(column: np.ndarray) -> np.ndarray:
    """Scale to [0, 1]; constant columns map to 0."""
    values = np.asarray(column, dtype=np.float64)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return np.zeros_like(values)
    low, high = finite.min(), finite.max()
    if high - low < _EPSILON:
        return np.zeros_like(values)
    out = (values - low) / (high - low)
    return _finalize(out)
