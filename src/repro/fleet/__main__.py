"""Fleet command line: lead, join, or inspect a distributed sweep.

    # 1. leader: enqueue the sweep, watchdog workers, render the table
    python -m repro.fleet leader sweep.db --exp table3 --seed 0

    # 2. workers (any number, any host sharing the file):
    python -m repro.bench table3 --store sweep.db --worker

    # 3. anyone, any time:
    python -m repro.fleet status sweep.db --watch 2

The leader blocks until the queue drains (or ``--timeout``), then
re-runs the experiment against the completed store — every cell
replays from its payload, so the printed table is bit-identical to a
serial run.  ``--enqueue-only`` exits right after the enqueue pass
(fire-and-forget sweeps); ``--no-render`` supervises but skips the
final table.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..store import RunStore
from .leader import FleetLeader, render_queue_status


def _add_subset_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        help="dataset subset (where the experiment takes one)",
    )
    parser.add_argument(
        "--methods",
        nargs="+",
        default=None,
        help="method subset (where the experiment takes one)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Distributed leader/worker experiment fleet.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    leader = sub.add_parser(
        "leader",
        help="enqueue a sweep, supervise its drain, render the result",
    )
    leader.add_argument("store", help="shared SQLite store file")
    leader.add_argument(
        "--exp",
        required=True,
        help="experiment id (see `python -m repro.bench list`)",
    )
    _add_subset_flags(leader)
    leader.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="attempts per cell before dead-lettering",
    )
    leader.add_argument(
        "--enqueue-only",
        action="store_true",
        help="exit after the enqueue pass (workers drain unsupervised)",
    )
    leader.add_argument(
        "--no-render",
        action="store_true",
        help="supervise the drain but skip the final render pass",
    )
    leader.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up supervising after this many seconds",
    )
    leader.add_argument(
        "--render-interval",
        type=float,
        default=5.0,
        help="seconds between live progress renders",
    )

    worker = sub.add_parser(
        "worker",
        help="join a sweep as a worker (alias for `python -m repro.bench "
        "<exp> --store <store> --worker`)",
    )
    worker.add_argument("store", help="shared SQLite store file")
    worker.add_argument("--worker-id", default=None)
    worker.add_argument("--lease-ttl", type=float, default=60.0)
    worker.add_argument("--max-cells", type=int, default=None)
    worker.add_argument(
        "--follow",
        action="store_true",
        help="keep polling after the queue drains",
    )

    status = sub.add_parser("status", help="queue progress at a glance")
    status.add_argument("store", help="shared SQLite store file")
    status.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-render every SECONDS until the queue drains",
    )

    args = parser.parse_args(argv)

    if args.command == "leader":
        fleet = FleetLeader(args.store, max_retries=args.max_retries)
        try:
            fleet.enqueue_experiment(
                args.exp,
                seed=args.seed,
                datasets=args.datasets,
                methods=args.methods,
            )
        except ValueError as error:
            parser.error(str(error))
        if args.enqueue_only:
            print(fleet.render_status())
            return 0
        report = fleet.supervise(
            render_interval=args.render_interval, timeout=args.timeout
        )
        if not report["drained"]:
            print(
                f"timed out after {report['elapsed']:.1f}s with "
                f"{fleet.store.queue_depth()} cells unfinished",
                file=sys.stderr,
            )
            print(fleet.render_status(), file=sys.stderr)
            return 1
        if report["dead"]:
            print(
                f"{len(report['dead'])} cells dead-lettered "
                "(inspect `python -m repro.fleet status`); not rendering",
                file=sys.stderr,
            )
            return 1
        print(
            f"drained in {report['elapsed']:.1f}s "
            f"({len(report['reaped'])} leases reaped)",
            file=sys.stderr,
        )
        if not args.no_render:
            print(
                fleet.render_experiment(
                    args.exp,
                    seed=args.seed,
                    datasets=args.datasets,
                    methods=args.methods,
                )
            )
        return 0

    if args.command == "worker":
        from .worker import FleetWorker

        runner = FleetWorker(
            args.store,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
            max_cells=args.max_cells,
            follow=args.follow,
        )
        print(
            f"worker {runner.worker_id} draining {args.store}",
            file=sys.stderr,
        )
        stats = runner.run()
        print(
            f"worker {stats.worker_id}: claimed={stats.claimed} "
            f"completed={stats.completed} (replayed={stats.replayed}) "
            f"failed={stats.failed} lost={stats.lost}",
            file=sys.stderr,
        )
        return 0 if not stats.errors else 1

    if args.command == "status":
        store = RunStore(args.store)
        if args.watch is None:
            print(render_queue_status(store))
            return 0
        while True:
            print(render_queue_status(store))
            if store.queue_depth() == 0:
                return 0
            print("---")
            time.sleep(args.watch)

    return 2  # unreachable: argparse enforces the subcommand set


if __name__ == "__main__":
    raise SystemExit(main())
