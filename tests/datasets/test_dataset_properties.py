"""Hypothesis property tests over the dataset substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import load, load_public, make_classification, make_regression
from repro.datasets.registry import TARGET_DATASETS


class TestGeneratorProperties:
    @given(
        st.integers(min_value=20, max_value=300),
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_classification_total_function(self, n, d, seed):
        task = make_classification(n_samples=n, n_features=d, seed=seed)
        assert task.X.shape == (n, d)
        assert task.X.isfinite()
        assert np.isfinite(task.y).all()
        assert set(np.unique(task.y)) <= set(range(10))

    @given(
        st.integers(min_value=20, max_value=300),
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_regression_total_function(self, n, d, seed):
        task = make_regression(n_samples=n, n_features=d, seed=seed)
        assert task.X.shape == (n, d)
        assert np.isfinite(task.y).all()

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_requested_class_count(self, k, seed):
        task = make_classification(
            n_samples=60 * k, n_classes=k, seed=seed
        )
        assert len(np.unique(task.y)) == k

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_determinism_by_seed(self, seed):
        a = make_classification(n_samples=60, n_features=4, seed=seed)
        b = make_classification(n_samples=60, n_features=4, seed=seed)
        np.testing.assert_array_equal(a.X.to_array(), b.X.to_array())
        np.testing.assert_array_equal(a.y, b.y)


class TestRegistryProperties:
    @given(st.sampled_from([entry.name for entry in TARGET_DATASETS]))
    @settings(max_examples=36, deadline=None)
    def test_every_registry_entry_loads_scaled(self, name):
        task = load(name, max_samples=60, max_features=5)
        assert task.n_samples <= 60
        assert task.n_features <= 5
        assert task.name == name

    @given(st.integers(min_value=0, max_value=238))
    @settings(max_examples=20, deadline=None)
    def test_every_public_index_loads(self, index):
        task = load_public(index, scale=0.2)
        assert task.n_samples >= 40
        assert task.n_features >= 3
