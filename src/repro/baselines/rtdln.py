"""RTDLN baseline: tabular ResNet body with a Random Forest head.

Derived from RTDL (Gorishniy et al., NeurIPS 2021) exactly as the paper
describes (Section IV-A3): train the ResNet, swap its softmax head for
a Random Forest fit on the penultimate representation, and evaluate.
Unlike the AFE engines, RTDLN pre-splits data into train/validation/
test partitions instead of cross-validating — the design choice the
paper blames for its collapse on small datasets ("this partition is a
fatal disadvantage", Section IV-E).
"""

from __future__ import annotations

import time

from ..core.engine import AFEResult, EngineConfig, EpochRecord
from ..datasets.generators import TabularTask
from ..ml.metrics import f1_score, one_minus_rae
from ..ml.model_selection import train_test_split
from ..ml.resnet import RTDLN as RTDLNModel

__all__ = ["RTDLNBaseline"]


class RTDLNBaseline:
    """Deep-learning baseline over raw features (no feature generation)."""

    method_name = "RTDLN"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()

    def fit(self, task: TabularTask) -> AFEResult:
        started = time.perf_counter()
        metric = f1_score if task.task == "C" else one_minus_rae
        X = task.X.to_array()
        # The paper's protocol: fixed train/test partition, not CV.
        X_train, X_test, y_train, y_test = train_test_split(
            X, task.y, test_size=0.25, seed=self.config.seed,
            stratify=task.task == "C",
        )
        model = RTDLNModel(
            task=task.task,
            width=32,
            n_blocks=2,
            n_epochs=max(10, self.config.n_epochs * 2),
            forest_estimators=self.config.n_estimators,
            seed=self.config.seed,
        )
        try:
            model.fit(X_train, y_train)
            score = float(metric(y_test, model.predict(X_test)))
        except (ValueError, FloatingPointError):
            # Tiny datasets can produce degenerate partitions — the
            # failure mode behind the near-zero RTDLN rows in Table III.
            score = 0.0
        score = max(score, 0.0)
        elapsed = time.perf_counter() - started
        return AFEResult(
            dataset=task.name,
            method=self.method_name,
            task=task.task,
            base_score=score,
            best_score=score,
            selected_features=list(task.X.columns),
            history=[
                EpochRecord(
                    epoch=0, elapsed=elapsed, n_evaluations=1, best_score=score
                )
            ],
            n_downstream_evaluations=1,
            wall_time=elapsed,
        )
