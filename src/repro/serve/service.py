"""TransformService: the thread-safe serving session.

One process answering transform traffic must not re-parse a plan's
expressions on every request — compilation (JSON → expression trees)
is the only non-vectorized work on the serving path.  The service
keeps an LRU of *compiled* :class:`~repro.api.plan.FeaturePlan`
objects keyed by their resolved registry reference, so the steady
state per request is: resolve the reference, reuse the compiled
handle, run vectorized numpy.

Accounting mirrors the evaluation layer's ``EvalStats``: every served
plan carries request/row/latency counters plus ``n_compiles`` — the
number the warm-cache contract is asserted on (a repeated plan is
served with ``n_compiles == 1`` no matter how many requests hit it).

Plans come from a :class:`~repro.serve.registry.PlanRegistry` (bare
names resolve to the *latest* version at request time, so a publish is
picked up without restarting the service) or are pinned directly with
:meth:`TransformService.add_plan` for registry-less serving.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..api.plan import FeaturePlan
from ..chaos import FaultInjected
from .registry import PlanNotFound, PlanRegistry
from .rows import rows_to_matrix

__all__ = ["PlanServeStats", "TransformService"]

#: Registry failures the service degrades through instead of dying:
#: backend I/O trouble (a remote/SQLite registry flaking) and injected
#: chaos faults.  Integrity failures and genuine not-found are *not*
#: here — serving a known-corrupt or never-published plan from cache
#: would be wrong, not resilient.
_DEGRADABLE_ERRORS = (sqlite3.Error, OSError, FaultInjected)


@dataclass
class PlanServeStats:
    """Per-plan serving counters (the serve-side ``EvalStats``)."""

    n_requests: int = 0
    n_rows: int = 0
    n_compiles: int = 0
    n_cache_hits: int = 0
    total_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the compiled-plan cache."""
        return self.n_cache_hits / self.n_requests if self.n_requests else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean seconds per request (transform time only)."""
        return self.total_seconds / self.n_requests if self.n_requests else 0.0

    @property
    def rows_per_second(self) -> float:
        return self.n_rows / self.total_seconds if self.total_seconds else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (counters plus derived rates)."""
        return {
            "n_requests": self.n_requests,
            "n_rows": self.n_rows,
            "n_compiles": self.n_compiles,
            "n_cache_hits": self.n_cache_hits,
            "total_seconds": self.total_seconds,
            "hit_rate": self.hit_rate,
            "mean_latency": self.mean_latency,
            "rows_per_second": self.rows_per_second,
        }


class TransformService:
    """Serve transform requests over a cache of compiled plans.

    Parameters
    ----------
    registry:
        Source of plans by reference (``name``, ``name@version``, or a
        content fingerprint).  Optional — plans can instead be pinned
        with :meth:`add_plan`.
    capacity:
        Maximum number of registry plans kept compiled at once; the
        least recently used is evicted (its counters survive, and a
        later request recompiles it — visible as ``n_compiles`` going
        up).  Pinned plans don't count against the capacity.
    """

    def __init__(
        self, registry: PlanRegistry | None = None, capacity: int = 8
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.registry = registry
        self.capacity = capacity
        self._lock = threading.Lock()
        self._cache: OrderedDict[str, FeaturePlan] = OrderedDict()
        self._pinned: dict[str, FeaturePlan] = {}
        self._stats: dict[str, PlanServeStats] = {}
        # Degraded-mode state: requested ref -> last successfully
        # resolved key (stale metadata served when the registry backend
        # errors), plus the failure that put the service in degraded
        # mode (None = healthy).  Counters feed /healthz and /metrics.
        self._resolved_refs: OrderedDict[str, str] = OrderedDict()
        self._degraded_error: str | None = None
        self.n_degraded_serves = 0
        self.n_registry_errors = 0

    # -- degraded mode -----------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while the registry backend is erroring (stale serving)."""
        with self._lock:
            return self._degraded_error is not None

    @property
    def degraded_error(self) -> str | None:
        """The registry failure that triggered degraded mode, if any."""
        with self._lock:
            return self._degraded_error

    _REF_MEMO_CAPACITY = 256

    def _remember_ref(self, ref: str, key: str) -> None:
        """Memoize a successful resolution for degraded replay (locked)."""
        self._resolved_refs[ref] = key
        self._resolved_refs.move_to_end(ref)
        while len(self._resolved_refs) > self._REF_MEMO_CAPACITY:
            self._resolved_refs.popitem(last=False)

    def _acquire_degraded(
        self, ref: str, error: BaseException, key: str | None = None
    ) -> tuple[str, FeaturePlan, bool]:
        """Serve ``ref`` from stale metadata + the compiled-plan LRU.

        Raises the original registry error when nothing cached can
        honor the request — degradation never invents plans.
        """
        detail = f"{type(error).__name__}: {error}"
        with self._lock:
            self.n_registry_errors += 1
            self._degraded_error = detail
            if key is None:
                key = self._resolved_refs.get(ref)
            if key is None and ref in self._cache:
                key = ref  # the ref was already fully pinned
            plan = self._cache.get(key) if key is not None else None
            if plan is None:
                raise error
            self._cache.move_to_end(key)
            self.n_degraded_serves += 1
            return key, plan, True

    def _registry_ok(self) -> None:
        """A registry access succeeded: leave degraded mode (locked)."""
        if self._degraded_error is not None:
            self._degraded_error = None

    # -- plan management ---------------------------------------------------
    def add_plan(self, plan: FeaturePlan, ref: str | None = None) -> str:
        """Pin a plan for serving without a registry.

        Returns the serving reference — ``ref`` when given, else the
        plan's content fingerprint.  Pinned plans are never evicted.
        """
        key = ref if ref is not None else plan.fingerprint
        with self._lock:
            self._pinned[key] = plan
            stats = self._stats.setdefault(key, PlanServeStats())
            stats.n_compiles += 1
        return key

    def n_plans(self) -> int:
        """Count of serveable plans (metadata only — liveness-probe cheap).

        Unlike :meth:`available`, this never loads plan documents, so
        a health endpoint can call it every few seconds against a
        large registry.  While the registry backend errors, the count
        falls back to what is compiled or pinned locally — the health
        probe must keep answering in degraded mode.
        """
        with self._lock:
            count = len(self._pinned)
        if self.registry is not None:
            try:
                count += len(self.registry)
            except _DEGRADABLE_ERRORS as error:
                with self._lock:
                    self.n_registry_errors += 1
                    self._degraded_error = f"{type(error).__name__}: {error}"
                    count += len(self._cache)
        return count

    def available(self) -> list[dict]:
        """Serving references currently resolvable, with metadata."""
        out = []
        with self._lock:
            pinned = list(self._pinned.items())
        for key, plan in pinned:
            out.append(
                {
                    "ref": key,
                    "fingerprint": plan.fingerprint,
                    "n_features": plan.n_features,
                    "pinned": True,
                }
            )
        if self.registry is not None:
            for record in self.registry.records():
                out.append(
                    {
                        "ref": record.ref,
                        "name": record.name,
                        "version": record.version,
                        "fingerprint": record.fingerprint,
                        "n_features": record.n_features,
                        "pinned": False,
                    }
                )
        return out

    def _acquire(self, ref: str) -> tuple[str, FeaturePlan, bool]:
        """Resolve ``ref`` to (key, compiled plan, cache-hit flag).

        Bare names resolve to the latest registry version *per
        request* (a cheap metadata lookup), so the cache key is always
        a fully pinned ``name@version`` — publishing version N+1 makes
        the next bare-name request compile the new plan instead of
        serving the stale one forever.
        """
        with self._lock:
            if ref in self._pinned:
                return ref, self._pinned[ref], True
        if self.registry is None:
            raise PlanNotFound(
                f"unknown plan {ref!r} (no registry attached; use add_plan)"
            )
        try:
            name, version = self.registry.resolve_ref(ref)
        except _DEGRADABLE_ERRORS as error:
            # Registry backend down: replay the last resolution this
            # ref got and serve the compiled plan from the LRU.
            return self._acquire_degraded(ref, error)
        key = f"{name}@{version}"
        with self._lock:
            self._registry_ok()
            self._remember_ref(ref, key)
            plan = self._cache.get(key)
            if plan is not None:
                self._cache.move_to_end(key)
                return key, plan, True
        # Compile outside the lock: parsing is pure CPU on immutable
        # inputs, and a slow compile must not stall other plans'
        # traffic.  Two threads racing on a cold plan may both compile;
        # one result wins the cache slot (both are equivalent).
        try:
            plan = self.registry.get(name, version)
        except _DEGRADABLE_ERRORS as error:
            return self._acquire_degraded(ref, error, key=key)
        with self._lock:
            self._registry_ok()
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                return key, cached, True
            self._cache[key] = plan
            self._stats.setdefault(key, PlanServeStats()).n_compiles += 1
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
            return key, plan, False

    # -- serving -----------------------------------------------------------
    def transform(self, ref: str, X) -> np.ndarray:
        """Apply plan ``ref`` to a micro-batch (matrix or Frame).

        Bit-identical to ``FeaturePlan.transform`` by construction —
        the service only caches the compiled plan, it never touches
        the numbers.
        """
        key, plan, hit = self._acquire(ref)
        started = time.perf_counter()
        out = plan.transform(X)
        self._account(key, hit, out.shape[0], time.perf_counter() - started)
        return out

    def _account(
        self, key: str, hit: bool, n_rows: int, elapsed: float
    ) -> None:
        """Record one served request against the plan's counters."""
        with self._lock:
            stats = self._stats.setdefault(key, PlanServeStats())
            stats.n_requests += 1
            stats.n_rows += int(n_rows)
            stats.n_cache_hits += 1 if hit else 0
            stats.total_seconds += elapsed

    def output_columns(self, ref: str) -> list[str]:
        """Column names plan ``ref`` produces, in order."""
        _, plan, _ = self._acquire(ref)
        return plan.output_columns

    def transform_rows(self, ref: str, rows) -> list[list[float]]:
        """Online single-row / small-batch traffic, JSON-shaped.

        ``rows`` may be one row or a list of rows, each either a flat
        value list (positional against the plan's ``input_columns``)
        or a ``{column: value}`` mapping.  Returns plain lists of
        floats — what an HTTP endpoint serializes directly.
        """
        return self.serve_rows(ref, rows)["rows"]

    def serve_rows(self, ref: str, rows) -> dict:
        """One consistent serving response for JSON-shaped traffic.

        Returns ``{"plan": <resolved name@version>, "columns": [...],
        "rows": [[...]]}``.  Plan resolution happens exactly once, so
        rows and column labels always come from the same plan version
        even when a concurrent publish moves the latest pointer
        mid-request.
        """
        key, plan, hit = self._acquire(ref)
        started = time.perf_counter()
        matrix = rows_to_matrix(plan.input_columns, rows)
        out = plan.transform(matrix)
        self._account(key, hit, out.shape[0], time.perf_counter() - started)
        return {
            "plan": key,
            "columns": plan.output_columns,
            "rows": out.tolist(),
        }

    # -- accounting --------------------------------------------------------
    def stats(self, ref: str | None = None) -> PlanServeStats | dict:
        """Counters for one resolved reference, or all of them.

        With ``ref=None`` returns ``{key: PlanServeStats}`` over every
        plan ever served (eviction keeps counters).  A bare name is
        resolved to its latest version first.
        """
        if ref is None:
            with self._lock:
                return dict(self._stats)
        key = ref
        if ref not in self._pinned and self.registry is not None:
            try:
                name, version = self.registry.resolve_ref(ref)
                key = f"{name}@{version}"
            except Exception:  # noqa: BLE001 — stats lookups never fail
                key = ref
        with self._lock:
            return self._stats.setdefault(key, PlanServeStats())

    @property
    def n_compiled(self) -> int:
        """Number of plans currently held compiled (cache + pinned)."""
        with self._lock:
            return len(self._cache) + len(self._pinned)

    def __repr__(self) -> str:
        return (
            f"TransformService(capacity={self.capacity}, "
            f"compiled={self.n_compiled})"
        )
