"""ML substrate: the sklearn stand-in the reproduction is built on."""

from .base import (
    BaseEstimator,
    Estimator,
    check_matrix,
    check_X_y,
    clone,
    sanitize_matrix,
)
from .boosting import GradientBoostingClassifier, GradientBoostingRegressor
from .forest import RandomForestClassifier, RandomForestRegressor
from .neighbors import KNeighborsClassifier, KNeighborsRegressor
from .gp import GaussianProcessRegressor
from .linear import LinearSVC, LogisticRegression, Ridge
from .metrics import (
    accuracy_score,
    f1_score,
    mean_absolute_error,
    mean_squared_error,
    one_minus_rae,
    precision_score,
    r2_score,
    recall_score,
    relative_absolute_error,
    score_for_task,
)
from .mlp import MLPClassifier, MLPRegressor
from .model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_mean,
    cross_val_score,
    train_test_split,
)
from .naive_bayes import GaussianNB
from .optim import SGD, Adam
from .preprocessing import (
    LabelEncoder,
    MeanImputer,
    MinMaxScaler,
    QuantileBinner,
    StandardScaler,
)
from .resnet import RTDLN, TabularResNet
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "Estimator",
    "clone",
    "check_matrix",
    "check_X_y",
    "sanitize_matrix",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "relative_absolute_error",
    "one_minus_rae",
    "score_for_task",
    "MinMaxScaler",
    "StandardScaler",
    "LabelEncoder",
    "MeanImputer",
    "QuantileBinner",
    "KFold",
    "StratifiedKFold",
    "train_test_split",
    "cross_val_score",
    "cross_val_mean",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "LogisticRegression",
    "LinearSVC",
    "Ridge",
    "GaussianNB",
    "GaussianProcessRegressor",
    "MLPClassifier",
    "MLPRegressor",
    "TabularResNet",
    "RTDLN",
    "SGD",
    "Adam",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
]
