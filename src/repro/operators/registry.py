"""Operator registry: the discrete action space of the RL agents.

The paper's action is ``OPERATOR(feature1, feature2)`` where unary
operators take the same feature twice (Section II, Action).  The
registry indexes the nine paper operators 0..8 so agents can emit an
integer action, and allows user extension with custom operators (the
public-API escape hatch a downstream user of the library would expect).
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from . import binary, unary

__all__ = [
    "Operator",
    "OperatorRegistry",
    "default_registry",
    "registry_fingerprint",
]


@dataclass(frozen=True)
class Operator:
    """One feature transformation.

    ``arity`` is 1 or 2; unary operators receive a single column, binary
    operators two columns of equal length.
    """

    name: str
    arity: int
    fn: Callable[..., np.ndarray]

    def __post_init__(self) -> None:
        if self.arity not in (1, 2):
            raise ValueError(f"operator arity must be 1 or 2, got {self.arity}")

    def apply(self, a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
        """Apply to operand columns; unary ignores ``b``."""
        if self.arity == 1:
            return self.fn(a)
        if b is None:
            raise ValueError(f"binary operator {self.name!r} needs two operands")
        return self.fn(a, b)

    def describe(self, name_a: str, name_b: str | None = None) -> str:
        """Canonical generated-feature name, e.g. ``mul(f1,f2)``."""
        if self.arity == 1:
            return f"{self.name}({name_a})"
        return f"{self.name}({name_a},{name_b})"


class OperatorRegistry:
    """Ordered collection of operators; order defines action indices."""

    def __init__(self, operators: list[Operator] | None = None) -> None:
        self._operators: list[Operator] = []
        self._by_name: dict[str, Operator] = {}
        for operator in operators or []:
            self.register(operator)

    def register(self, operator: Operator) -> None:
        if operator.name in self._by_name:
            raise ValueError(f"operator {operator.name!r} already registered")
        self._operators.append(operator)
        self._by_name[operator.name] = operator

    def __len__(self) -> int:
        return len(self._operators)

    def __iter__(self):
        return iter(self._operators)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def by_index(self, index: int) -> Operator:
        if not 0 <= index < len(self._operators):
            raise IndexError(
                f"action index {index} out of range for {len(self._operators)} operators"
            )
        return self._operators[index]

    def by_name(self, name: str) -> Operator:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no operator named {name!r}") from None

    @property
    def names(self) -> list[str]:
        return [operator.name for operator in self._operators]

    @property
    def unary_indices(self) -> list[int]:
        return [i for i, op in enumerate(self._operators) if op.arity == 1]

    @property
    def binary_indices(self) -> list[int]:
        return [i for i, op in enumerate(self._operators) if op.arity == 2]


def registry_fingerprint(registry: OperatorRegistry) -> str:
    """Stable content id of an operator set.

    Covers each operator's name, arity, and position (order defines the
    RL action indices and the canonical expression grammar).  Portable
    artifacts — :class:`~repro.api.plan.FeaturePlan` — store this id so
    a plan built against one operator set refuses to silently evaluate
    under a different one.
    """
    serialized = ";".join(
        f"{i}:{op.name}/{op.arity}" for i, op in enumerate(registry)
    )
    digest = hashlib.blake2b(serialized.encode(), digest_size=8).hexdigest()
    return f"ops-v1:{digest}"


def default_registry() -> OperatorRegistry:
    """The paper's nine operators (4 unary + 5 binary), in fixed order."""
    return OperatorRegistry(
        [
            Operator("log", 1, unary.safe_log),
            Operator("minmax", 1, unary.min_max_normalize),
            Operator("sqrt", 1, unary.safe_sqrt),
            Operator("recip", 1, unary.safe_reciprocal),
            Operator("add", 2, binary.add),
            Operator("sub", 2, binary.subtract),
            Operator("mul", 2, binary.multiply),
            Operator("div", 2, binary.safe_divide),
            Operator("mod", 2, binary.safe_modulo),
        ]
    )
