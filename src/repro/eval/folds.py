"""Run-level cache of cross-validation fold plans.

Fold indices depend only on ``(y, n_splits, seed, stratified)`` — never
on the candidate matrix — yet the seed implementation re-derived them
inside every single downstream evaluation.  One AFE run issues hundreds
to thousands of evaluations against the *same* target, so the plan is
computed once here and handed to :func:`repro.ml.model_selection
.cross_val_score` via its ``folds`` parameter.  Plans are exactly what
an inline split would produce, so scores are bit-identical.
"""

from __future__ import annotations

import numpy as np

from ..ml.model_selection import plan_folds
from .fingerprint import content_digest

__all__ = ["FoldCache"]

FoldPlan = tuple[tuple[np.ndarray, np.ndarray], ...]


class FoldCache:
    """Memoize :func:`plan_folds` keyed on target content and CV params."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._plans: dict[tuple[str, int, int, int, bool], FoldPlan] = {}
        self.n_hits = 0
        self.n_misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def plan(
        self,
        y: np.ndarray,
        n_splits: int,
        seed: int = 0,
        stratified: bool = False,
    ) -> FoldPlan:
        target = np.asarray(y, dtype=np.float64).reshape(-1)
        key = (
            content_digest(target),
            target.shape[0],
            int(n_splits),
            int(seed),
            bool(stratified),
        )
        cached = self._plans.get(key)
        if cached is not None:
            self.n_hits += 1
            return cached
        self.n_misses += 1
        plan = plan_folds(
            target, n_splits=n_splits, seed=seed, stratified=stratified
        )
        if len(self._plans) >= self._max_entries:
            # FIFO eviction: fold plans are cheap to rebuild and a run
            # touches very few distinct targets.
            self._plans.pop(next(iter(self._plans)))
        self._plans[key] = plan
        return plan
