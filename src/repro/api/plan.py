"""FeaturePlan: the portable artifact a feature search produces.

The search→production handoff used to be a loose pile — an
:class:`~repro.core.engine.AFEResult` for scores, a
``FeatureTransformer`` for inference, ``save_fpe`` for the filter
model.  :class:`FeaturePlan` bundles everything deployment needs into
one versioned JSON document:

* the selected feature expressions (canonical names, compiled once
  into expression trees);
* the input schema (raw column names, so plain numpy matrices map
  positionally);
* the operator-registry fingerprint (a plan refuses to evaluate under
  a different operator set than it was searched with);
* the FPE identity and run provenance (dataset, method, config hash,
  base/best scores, library version) — enough to answer "where did
  this artifact come from" in production.

An *empty* selection is a legitimate plan: the search found no
improvement, and :meth:`transform` is the identity on the raw columns.

Bit-identity contract: ``FeaturePlan.load(path).transform(X)`` in any
process equals the producing process's ``transform(X)`` bit for bit —
evaluation is deterministic numpy over a JSON round-trip that is exact
for floats.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from ..core.engine import AFEResult
from ..frame.frame import Frame
from ..operators.expression import Expression, parse_expression
from ..operators.registry import (
    OperatorRegistry,
    default_registry,
    registry_fingerprint,
)

__all__ = [
    "CompiledTransform",
    "FeaturePlan",
    "PLAN_FORMAT_VERSION",
    "fpe_identity",
    "plan_fingerprint",
]

PLAN_FORMAT_VERSION = 1


def plan_fingerprint(payload: dict) -> str:
    """Stable content fingerprint of a plan document.

    Covers exactly what :meth:`FeaturePlan.transform` computes — the
    expression list, the input schema, and the operator-registry id —
    and deliberately *excludes* FPE identity and provenance, so two
    runs (different seeds, different datasets renamed the same way)
    that selected the same feature set share one fingerprint.  This is
    the address serving artifacts are keyed by (DIFER-style reuse:
    identical content, not identical filename).
    """
    content = {
        "format_version": payload.get("format_version", PLAN_FORMAT_VERSION),
        "registry_id": payload["registry_id"],
        "feature_names": list(payload["feature_names"]),
        "input_columns": list(payload["input_columns"]),
    }
    serialized = json.dumps(content, sort_keys=True)
    digest = hashlib.blake2b(serialized.encode(), digest_size=16).hexdigest()
    return f"plan-v1:{digest}"


class CompiledTransform:
    """The parse-once evaluation handle behind :meth:`FeaturePlan.transform`.

    Holds the plan's expression trees (parsed exactly once, at plan
    construction) and evaluates them as vectorized numpy computations
    against a schema-checked :class:`~repro.frame.Frame`.  Serving
    layers (:class:`repro.serve.TransformService`) hold on to this
    handle so repeated requests against one plan never re-parse; it is
    stateless and safe to share across threads.
    """

    __slots__ = ("feature_names", "input_columns", "_expressions")

    def __init__(
        self,
        feature_names: list[str],
        input_columns: list[str],
        expressions: list[Expression],
    ) -> None:
        self.feature_names = feature_names
        self.input_columns = input_columns
        self._expressions = expressions

    @property
    def is_identity(self) -> bool:
        return not self.feature_names

    def __call__(self, frame: Frame) -> np.ndarray:
        """Evaluate every expression against ``frame`` as one matrix.

        The frame must already satisfy the plan's schema (the plan's
        ``_coerce`` guarantees it); no per-request validation happens
        here — this is the hot serving path.
        """
        if self.is_identity:
            return frame.select(self.input_columns).to_array()
        out = np.empty(
            (frame.n_rows, len(self._expressions)), dtype=np.float64
        )
        for j, expression in enumerate(self._expressions):
            out[:, j] = expression.evaluate(frame)
        return out


def fpe_identity(fpe) -> dict | None:
    """Constructor identity of an FPE model (``None`` for no model).

    The same four fields the bench run store folds into cell hashes:
    hash family, signature dimension, seed, labelling threshold.
    """
    if fpe is None:
        return None
    return {
        "method": fpe.method,
        "d": int(fpe.d),
        "seed": int(fpe.seed),
        "thre": float(fpe.thre),
    }


class FeaturePlan:
    """A compiled, versioned, portable engineered-feature pipeline.

    Parameters
    ----------
    feature_names:
        Canonical expression names (typically
        ``AFEResult.selected_features``).  May be empty — the identity
        plan.
    input_columns:
        Raw column names of the training frame, in order.  This is the
        input schema: a numpy matrix handed to :meth:`transform` is
        interpreted positionally against these names.
    registry:
        Operator registry the expressions were searched with; defaults
        to the paper's nine operators.
    fpe:
        Identity dict (see :func:`fpe_identity`) of the FPE model that
        filtered the search, or ``None``.
    provenance:
        Free-form provenance mapping (dataset, method, scores, config
        hash, library version, ...).
    """

    def __init__(
        self,
        feature_names: list[str],
        input_columns: list[str],
        registry: OperatorRegistry | None = None,
        fpe: dict | None = None,
        provenance: dict | None = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.registry_id = registry_fingerprint(self.registry)
        self.feature_names = [str(name) for name in feature_names]
        self.input_columns = [str(name) for name in input_columns]
        self.fpe = dict(fpe) if fpe else None
        self.provenance = dict(provenance or {})
        # Expressions are parsed exactly once, here; every transform —
        # in-process, via a serving session, over HTTP — reuses the
        # same compiled handle.
        self._compiled = CompiledTransform(
            self.feature_names,
            self.input_columns,
            [
                parse_expression(name, self.registry)
                for name in self.feature_names
            ],
        )
        missing = self.required_columns - set(self.input_columns)
        if missing:
            raise ValueError(
                f"plan expressions reference columns {sorted(missing)!r} "
                "absent from input_columns"
            )

    # -- construction ------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: AFEResult,
        input_columns: list[str],
        registry: OperatorRegistry | None = None,
        fpe=None,
        config=None,
    ) -> "FeaturePlan":
        """Build the deployable plan of a finished AFE run.

        ``input_columns`` must be the *full* raw schema of the training
        data (the engine's agent pre-filter may have searched a column
        subset, but production frames carry every original column).
        ``fpe`` may be an :class:`~repro.core.fpe.FPEModel` or an
        identity dict; ``config`` (an ``EngineConfig``) contributes its
        content hash to provenance.
        """
        from .. import __version__
        from ..store.runs import config_hash

        identity = fpe if isinstance(fpe, dict) or fpe is None else fpe_identity(fpe)
        provenance = {
            "dataset": result.dataset,
            "method": result.method,
            "task": result.task,
            "base_score": result.base_score,
            "best_score": result.best_score,
            "created_by": f"repro {__version__}",
        }
        if config is not None:
            provenance["config_hash"] = config_hash(config)
        return cls(
            feature_names=list(result.selected_features),
            input_columns=list(input_columns),
            registry=registry,
            fpe=identity,
            provenance=provenance,
        )

    # -- introspection -----------------------------------------------------
    @property
    def n_features(self) -> int:
        """Number of output features (input width for identity plans)."""
        if self.is_identity:
            return len(self.input_columns)
        return len(self.feature_names)

    @property
    def is_identity(self) -> bool:
        """True when the search selected nothing: transform is X → X."""
        return not self.feature_names

    @property
    def required_columns(self) -> set[str]:
        """Raw columns the plan's expressions need at inference time."""
        out: set[str] = set()
        for expression in self._compiled._expressions:
            out |= expression.columns()
        return out

    @property
    def fingerprint(self) -> str:
        """Content address of this plan (see :func:`plan_fingerprint`)."""
        return plan_fingerprint(self.to_dict())

    @property
    def compiled(self) -> CompiledTransform:
        """The parse-once :class:`CompiledTransform` evaluation handle."""
        return self._compiled

    def diff(self, other: "FeaturePlan") -> dict:
        """Expression-level comparison against another plan.

        Returns a dict with ``shared`` (expressions in both, in this
        plan's order), ``only_left`` (only in ``self``), ``only_right``
        (only in ``other``), plus ``same_schema`` / ``same_registry``
        flags.  The intended use is comparing seeds of one method: how
        stable is the selected feature set across search randomness?
        """
        left, right = self.feature_names, other.feature_names
        left_set, right_set = set(left), set(right)
        return {
            "shared": [name for name in left if name in right_set],
            "only_left": [name for name in left if name not in right_set],
            "only_right": [name for name in right if name not in left_set],
            "same_schema": self.input_columns == other.input_columns,
            "same_registry": self.registry_id == other.registry_id,
        }

    @property
    def output_columns(self) -> list[str]:
        """Names of the columns :meth:`transform` produces, in order."""
        if self.is_identity:
            return list(self.input_columns)
        return list(self.feature_names)

    # -- inference ---------------------------------------------------------
    def _coerce(self, X) -> Frame:
        if isinstance(X, Frame):
            needed = (
                set(self.input_columns) if self.is_identity
                else self.required_columns
            )
            missing = needed - set(X.columns)
            if missing:
                raise KeyError(
                    f"input frame is missing columns {sorted(missing)!r}"
                )
            return X
        matrix = np.asarray(X, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.input_columns):
            raise ValueError(
                f"expected a 2-D matrix with {len(self.input_columns)} "
                f"columns ({self.input_columns}), got shape {matrix.shape}"
            )
        return Frame(matrix, columns=self.input_columns)

    def transform(self, X) -> np.ndarray:
        """Materialize every planned feature as one dense float64 matrix.

        ``X`` may be a :class:`~repro.frame.Frame` (matched by column
        name) or a numpy matrix (matched positionally against
        ``input_columns``).  Each compiled expression evaluates as one
        vectorized numpy computation over all rows.  Identity plans
        return the input columns unchanged.
        """
        return self._compiled(self._coerce(X))

    def transform_frame(self, X) -> Frame:
        """Like :meth:`transform`, returning a column-labelled Frame."""
        return Frame(self.transform(X), columns=self.output_columns)

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable document (the on-disk artifact)."""
        return {
            "format_version": PLAN_FORMAT_VERSION,
            "registry_id": self.registry_id,
            "feature_names": list(self.feature_names),
            "input_columns": list(self.input_columns),
            "fpe": dict(self.fpe) if self.fpe else None,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(
        cls, payload: dict, registry: OperatorRegistry | None = None
    ) -> "FeaturePlan":
        """Rebuild a plan from :meth:`to_dict` output.

        The stored operator-registry fingerprint must match the one the
        plan is being loaded against; a plan searched with custom
        operators must be loaded with that same registry.
        """
        version = payload.get("format_version")
        if version != PLAN_FORMAT_VERSION:
            raise ValueError(f"unsupported FeaturePlan format version {version!r}")
        registry = registry or default_registry()
        stored_id = payload.get("registry_id")
        current_id = registry_fingerprint(registry)
        if stored_id != current_id:
            raise ValueError(
                f"operator-registry mismatch: plan was built with "
                f"{stored_id!r}, loading against {current_id!r}; pass the "
                "registry the plan was searched with"
            )
        return cls(
            feature_names=list(payload["feature_names"]),
            input_columns=list(payload["input_columns"]),
            registry=registry,
            fpe=payload.get("fpe"),
            provenance=payload.get("provenance"),
        )

    def save(self, path: str | Path) -> None:
        """Write the plan as a portable JSON artifact."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2), encoding="utf-8"
        )

    @classmethod
    def load(
        cls, path: str | Path, registry: OperatorRegistry | None = None
    ) -> "FeaturePlan":
        """Load a plan saved by :meth:`save`."""
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8")),
            registry=registry,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeaturePlan):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        label = "identity" if self.is_identity else f"{len(self.feature_names)} features"
        origin = self.provenance.get("dataset")
        suffix = f", dataset={origin!r}" if origin else ""
        return f"FeaturePlan({label}, {len(self.input_columns)} inputs{suffix})"
